#include "cdsim/sim/l3_cache.hpp"

#include <utility>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/host_timer.hpp"

namespace cdsim::sim {

using coherence::MesiState;

namespace {
cache::LevelPolicy l3_policy() {
  cache::LevelPolicy p;
  p.name = "L3";
  p.allocate_on_write = true;   // absorbed write-backs allocate
  p.write_through = false;      // dirty bank lines write back to memory
  p.inclusive_above = false;    // memory-side: the directory tracks uppers
  p.coherent = false;           // the home bank serializes on its behalf
  p.write_buffer_entries = 0;
  return p;
}
}  // namespace

L3Cache::L3Cache(EventQueue& eq, const L3Config& cfg,
                 const decay::DecayConfig& dcfg, std::uint32_t num_banks)
    : eq_(eq), cfg_(cfg) {
  CDSIM_ASSERT(num_banks >= 1);
  const cache::Geometry geo(cfg.bank_bytes, cfg.line_bytes, cfg.ways);
  const cache::LevelTiming timing{cfg.hit_latency, cfg.mshr_entries,
                                  /*retry_interval=*/1};
  banks_.reserve(num_banks);
  for (std::uint32_t b = 0; b < num_banks; ++b) {
    banks_.push_back(std::make_unique<Bank>(
        eq, geo, timing, dcfg, l3_policy(),
        [this, b](Cycle now) { decay_sweep(b, now); }));
  }
}

void L3Cache::start() {
  for (auto& b : banks_) b->level.start();
}

void L3Cache::stop() {
  for (auto& b : banks_) b->level.stop();
}

// ---------------------------------------------------------------------------
// Line death / memory push
// ---------------------------------------------------------------------------

void L3Cache::line_off(Bank& b, LineT ln) {
  CDSIM_ASSERT(ln.valid());
  if (obs_) obs_->on_l3_invalidate(ln.tag(), eq_.now());
  ln.payload().dirty = false;
  b.level.tags().invalidate(ln);
  b.level.power_off();
}

void L3Cache::push_to_memory(std::uint32_t bank, Addr line) {
  CDSIM_ASSERT_MSG(mem_port_ != nullptr, "L3 memory port not connected");
  if (obs_) obs_->on_l3_writeback(line, eq_.now());
  if (trace_ != nullptr) {
    trace_->instant(trace_track_, "wb.mem", eq_.now(), "line", line);
  }
  mem_port_(bank, line, cfg_.line_bytes);
}

void L3Cache::evict(std::uint32_t bank, LineT victim) {
  Bank& b = *banks_[bank];
  b.level.stats().evictions.inc();
  if (victim.payload().dirty) {
    // §III legality at the last level: dirty data the channel never saw
    // must reach memory before the line may die.
    b.level.stats().writebacks.inc();
    push_to_memory(bank, victim.tag());
  }
  line_off(b, victim);
}

// ---------------------------------------------------------------------------
// noc::MemorySideCache
// ---------------------------------------------------------------------------

bool L3Cache::lookup_for_fill(std::uint32_t bank, Addr line) {
  Bank& b = *banks_.at(bank);
  LineT ln = b.level.tags().find(line);
  if (!ln) {
    b.level.note_miss(line, /*is_write=*/false);
    return false;
  }
  b.level.stats().read_hits.inc();
  b.level.touch(ln);
  return true;
}

void L3Cache::install_from_memory(std::uint32_t bank, Addr line) {
  Bank& b = *banks_.at(bank);
  if (LineT ln = b.level.tags().find(line)) {
    // A same-line fill raced this one through the channel (the first
    // install landed before the second read returned): just refresh.
    b.level.touch(ln);
    return;
  }
  const LineT slot = b.level.tags().pick_victim(line);
  if (slot.valid()) evict(bank, slot);

  Payload p;
  p.dirty = false;
  p.decay.last_touch = eq_.now();
  // A clean bank line is the L3 analogue of Shared: cheap to drop, so
  // both decay flavours arm it.
  b.level.arm_on_entry(p.decay, MesiState::kShared);
  const LineT installed =
      b.level.tags().install(slot, line, std::move(p));
  b.level.wheel_register(installed);
  b.level.power_on();
  b.level.clear_attribution(line);
  b.level.fills().inc();
  if (obs_) obs_->on_l3_install(line, eq_.now());
}

void L3Cache::absorb_writeback(std::uint32_t bank, Addr line) {
  Bank& b = *banks_.at(bank);
  if (LineT ln = b.level.tags().find(line)) {
    // Overwrite in place: the write-back data supersedes whatever the bank
    // held (a clean copy, or an earlier absorbed version).
    b.level.stats().write_hits.inc();
    ln.payload().dirty = true;
    b.level.arm_on_entry(ln.payload().decay, MesiState::kModified);
    b.level.touch(ln);
    return;
  }
  // An allocating absorb is a write "miss" for occupancy bookkeeping, but
  // NOT a decay-attributable one: absorbing allocates at zero latency and
  // zero traffic either way, so a preceding decay drop cost nothing here.
  // Bypassing note_miss leaves any attribution entry for this line to the
  // next genuine fill miss (the event that actually pays a refetch).
  b.level.stats().write_misses.inc();
  const LineT slot = b.level.tags().pick_victim(line);
  if (slot.valid()) evict(bank, slot);

  Payload p;
  p.dirty = true;
  p.decay.last_touch = eq_.now();
  // Dirty is the L3 analogue of Modified: Selective Decay disarms it (its
  // turn-off costs a memory write), full Decay arms everything.
  b.level.arm_on_entry(p.decay, MesiState::kModified);
  const LineT installed =
      b.level.tags().install(slot, line, std::move(p));
  b.level.wheel_register(installed);
  b.level.power_on();
  b.level.clear_attribution(line);
  b.level.fills().inc();
  // No on_l3_install here: the verifier recorded the absorbed version at
  // on_writeback_resolved(to_l3=true); an install event would wrongly
  // overwrite it with the (stale) memory version.
}

void L3Cache::invalidate(std::uint32_t bank, Addr line) {
  Bank& b = *banks_.at(bank);
  if (LineT ln = b.level.tags().find(line)) {
    // A memory-updating owner flush just overwrote the channel copy: the
    // bank's copy — even a dirty one — is older and must not serve again.
    b.level.stats().coherence_invals.inc();
    line_off(b, ln);
  }
}

// ---------------------------------------------------------------------------
// Decay at the last level
// ---------------------------------------------------------------------------

void L3Cache::decay_sweep(std::uint32_t bank, Cycle now) {
  const prof::ScopedPhase prof_scope(prof::Phase::kDecaySweep);
  Bank& b = *banks_[bank];
  std::uint64_t swept = 0;
  b.level.for_each_expired(now, [&](LineT ln, std::size_t /*line_index*/) {
    // The home bank is the serialization point, so the Figure-2 transient
    // choreography degenerates: no snooper can race this turn-off.
    b.level.stats().decay_turnoffs.inc();
    b.level.mark_decayed(ln.tag());
    if (ln.payload().dirty) {
      // Dirty turn-off: the absorbed write-back must reach memory.
      b.level.stats().writebacks.inc();
      push_to_memory(bank, ln.tag());
    }
    // Clean turn-off: silent drop — memory already holds the data.
    line_off(b, ln);
    ++swept;
  });
  if (trace_ != nullptr && swept > 0) {
    trace_->instant(trace_track_, "decay.sweep", now, "bank", bank);
  }
}

// ---------------------------------------------------------------------------
// Aggregated introspection
// ---------------------------------------------------------------------------

std::uint64_t L3Cache::accesses() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b->level.stats().accesses();
  return n;
}

std::uint64_t L3Cache::hits() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : banks_) {
    n += b->level.stats().read_hits.value() +
         b->level.stats().write_hits.value();
  }
  return n;
}

std::uint64_t L3Cache::misses() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b->level.stats().misses();
  return n;
}

std::uint64_t L3Cache::decay_turnoffs() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b->level.stats().decay_turnoffs.value();
  return n;
}

std::uint64_t L3Cache::decay_induced_misses() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : banks_) {
    n += b->level.stats().decay_induced_misses.value();
  }
  return n;
}

std::uint64_t L3Cache::writebacks() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b->level.stats().writebacks.value();
  return n;
}

std::uint64_t L3Cache::evictions() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b->level.stats().evictions.value();
  return n;
}

std::uint64_t L3Cache::fills() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b->level.fills().value();
  return n;
}

std::uint64_t L3Cache::lines_on() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b->level.lines_on();
  return n;
}

std::uint64_t L3Cache::capacity_lines() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : banks_) n += b->level.capacity_lines();
  return n;
}

double L3Cache::powered_line_cycles(Cycle now) const {
  double s = 0.0;
  for (const auto& b : banks_) s += b->level.powered_line_cycles(now);
  return s;
}

double L3Cache::occupation(Cycle now) const {
  if (now == 0) return 1.0;
  return powered_line_cycles(now) /
         (static_cast<double>(capacity_lines()) * static_cast<double>(now));
}

bool L3Cache::has_line(std::uint32_t bank, Addr line) const {
  return static_cast<bool>(banks_.at(bank)->level.tags().find(line));
}

bool L3Cache::line_dirty(std::uint32_t bank, Addr line) const {
  const LineT ln = banks_.at(bank)->level.tags().find(line);
  return ln && ln.payload().dirty;
}

}  // namespace cdsim::sim
