#include "cdsim/sim/cmp_system.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/host_timer.hpp"

namespace cdsim::sim {

void validate_system_config(const SystemConfig& cfg) {
  const auto fail = [](const std::string& why) {
    throw std::invalid_argument("SystemConfig: " + why);
  };
  if (cfg.num_cores == 0) fail("num_cores must be at least 1");
  if (cfg.num_cores > 64) {
    fail("num_cores " + std::to_string(cfg.num_cores) +
         " exceeds 64 (the directory's sharer bitmap width)");
  }
  if (cfg.total_l2_bytes == 0 ||
      cfg.total_l2_bytes % cfg.num_cores != 0) {
    fail("total_l2_bytes " + std::to_string(cfg.total_l2_bytes) +
         " is not divisible into " + std::to_string(cfg.num_cores) +
         " per-core slices");
  }
  if (cfg.topology == noc::Topology::kDirectoryMesh &&
      !is_pow2(cfg.num_cores)) {
    fail("num_cores " + std::to_string(cfg.num_cores) +
         " must be a power of two for the mesh tile grid");
  }
  if (!cfg.per_core_instructions.empty() &&
      cfg.per_core_instructions.size() != cfg.num_cores) {
    fail("per_core_instructions has " +
         std::to_string(cfg.per_core_instructions.size()) +
         " entries; expected 0 or num_cores (" +
         std::to_string(cfg.num_cores) + ")");
  }
  if (cfg.hierarchy == Hierarchy::kThreeLevel) {
    if (cfg.topology != noc::Topology::kDirectoryMesh) {
      fail("three-level hierarchy requires the directory-mesh topology "
           "(the shared L3 banks live at the mesh home tiles)");
    }
    if (cfg.total_l3_bytes == 0 ||
        cfg.total_l3_bytes % cfg.num_cores != 0) {
      fail("total_l3_bytes " + std::to_string(cfg.total_l3_bytes) +
           " is not divisible into " + std::to_string(cfg.num_cores) +
           " home banks");
    }
    const std::uint64_t bank = cfg.total_l3_bytes / cfg.num_cores;
    if (!is_pow2(bank)) {
      fail("per-bank L3 size " + std::to_string(bank) +
           " must be a power of two");
    }
    // The bank line size is overridden to the L2's at construction (one
    // coherence/interleave unit); validate with the value actually used.
    if (bank < static_cast<std::uint64_t>(cfg.l2.line_bytes) * cfg.l3.ways) {
      fail("per-bank L3 size " + std::to_string(bank) +
           " is smaller than one set (" +
           std::to_string(cfg.l2.line_bytes) + " B lines x " +
           std::to_string(cfg.l3.ways) + " ways)");
    }
  }
  const auto check_decay = [&fail](const decay::DecayConfig& d,
                                   const char* level) {
    if (decay::uses_decay(d.technique) && d.tick_period() == 0) {
      fail(std::string(level) +
           " decay technique needs a nonzero decay_time / tick period");
    }
  };
  check_decay(cfg.l1_decay, "L1");
  check_decay(cfg.l3_decay, "L3");
}

CmpSystem::CmpSystem(const SystemConfig& cfg, const workload::Benchmark& bench,
                     const workload::StreamFactory& streams)
    : cfg_(cfg), bench_(bench), leak_model_(cfg.leakage) {
  validate_system_config(cfg_);

  mem_ = std::make_unique<mem::MemoryController>(eq_, cfg_.mem);
  if (cfg_.topology == noc::Topology::kSnoopBus) {
    bus_ = std::make_unique<bus::SnoopBus>(eq_, cfg_.bus, *mem_);
    ic_ = bus_.get();
  } else {
    noc::DirectoryMeshConfig dcfg = cfg_.dmesh;
    dcfg.home_interleave_bytes = cfg_.l2.line_bytes;
    mesh_ = std::make_unique<noc::DirectoryMesh>(eq_, dcfg, *mem_,
                                                 cfg_.num_cores);
    ic_ = mesh_.get();
  }

  if (cfg_.hierarchy == Hierarchy::kThreeLevel) {
    L3Config l3cfg = cfg_.l3;
    l3cfg.bank_bytes = cfg_.total_l3_bytes / cfg_.num_cores;
    l3cfg.line_bytes = cfg_.l2.line_bytes;  // one coherence/interleave unit
    l3_ = std::make_unique<L3Cache>(eq_, l3cfg, cfg_.l3_decay,
                                    cfg_.num_cores);
    mesh_->attach_l3(l3_.get());
  }

  L2Config l2cfg = cfg_.l2;
  l2cfg.size_bytes = cfg_.total_l2_bytes / cfg_.num_cores;
  l2cfg.protocol = cfg_.protocol;

  const double slice_mb = static_cast<double>(l2cfg.size_bytes) /
                          static_cast<double>(MiB);
  floorplan_ = std::make_unique<thermal::Floorplan>(
      thermal::make_cmp_floorplan(cfg_.thermal, cfg_.num_cores, slice_mb));

  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    l1s_.push_back(std::make_unique<L1Cache>(eq_, cfg_.l1, c,
                                             cfg_.l1_decay));
    l2s_.push_back(std::make_unique<L2Cache>(eq_, l2cfg, cfg_.decay, c,
                                             *ic_, l1s_.back().get()));
    l1s_.back()->connect_l2(l2s_.back().get());
    ic_->attach(l2s_.back().get());

    streams_.push_back(streams ? streams(c, cfg_.seed)
                               : workload::make_stream(bench_, c, cfg_.seed));
    const std::uint64_t budget = cfg_.per_core_instructions.empty()
                                     ? cfg_.instructions_per_core
                                     : cfg_.per_core_instructions[c];
    // With TLBs enabled the core loads through the per-core TlbPort, which
    // interposes the walk latency in front of the L1.
    core::LoadStorePort* port = l1s_.back().get();
    if (cfg_.mem.tlb.enabled) {
      tlbs_.push_back(std::make_unique<mem::TlbPort>(eq_, cfg_.mem.tlb,
                                                     *l1s_.back()));
      port = tlbs_.back().get();
    }
    cores_.push_back(std::make_unique<core::CoreModel>(
        eq_, cfg_.core, c, *streams_.back(), *port, budget));
  }

  // Warm-start the thermal network near equilibrium so short runs operate
  // at representative temperatures (see rc_model.hpp header note).
  const double cw = cfg_.thermal.watts_per_eu_cycle;
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    const double core_w =
        (cfg_.power.core_leak_per_cycle + cfg_.power.core_dyn_per_instr) * cw;
    floorplan_->model.warm_start(floorplan_->core_block(c), core_w);
    const double l2_lines =
        static_cast<double>(l2s_[c]->capacity_lines());
    const double l2_w = l2_lines * cfg_.power.l2_leak_per_line_cycle * cw;
    floorplan_->model.warm_start(floorplan_->l2_block(c), l2_w);
  }

  prev_committed_.assign(cfg_.num_cores, 0);
  prev_l1_acc_.assign(cfg_.num_cores, 0);
  prev_l1_powered_.assign(cfg_.num_cores, 0.0);
  prev_l2_acc_.assign(cfg_.num_cores, 0);
  prev_l2_fills_.assign(cfg_.num_cores, 0);
  prev_l2_powered_.assign(cfg_.num_cores, 0.0);
}

CmpSystem::~CmpSystem() = default;

void CmpSystem::set_observer(verify::AccessObserver* obs) {
  CDSIM_ASSERT_MSG(!ran_, "observer must be attached before run()");
  ic_->set_observer(obs);
  for (auto& l1 : l1s_) l1->set_observer(obs);
  for (auto& l2 : l2s_) l2->set_observer(obs);
  if (l3_ != nullptr) l3_->set_observer(obs);
}

void CmpSystem::set_trace_recorder(obs::TraceRecorder* rec) {
  CDSIM_ASSERT_MSG(!ran_, "trace recorder must be attached before run()");
  // Track registration order is fixed (cores, L1s, L2s, fabric, L3, TLBs,
  // then the memory side registers its own bank tracks) so trace files for
  // the same config are structurally identical across runs.
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    cores_[c]->set_trace(rec, rec != nullptr
                                  ? rec->track("core" + std::to_string(c))
                                  : 0);
  }
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    l1s_[c]->set_trace(rec, rec != nullptr
                                ? rec->track("L1." + std::to_string(c))
                                : 0);
  }
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    l2s_[c]->set_trace(rec, rec != nullptr
                                ? rec->track("L2." + std::to_string(c))
                                : 0);
  }
  const obs::TrackId fabric =
      rec != nullptr ? rec->track("fabric") : 0;
  if (bus_ != nullptr) bus_->set_trace(rec, fabric);
  if (mesh_ != nullptr) mesh_->set_trace(rec, fabric);
  if (l3_ != nullptr) {
    l3_->set_trace(rec, rec != nullptr ? rec->track("L3") : 0);
  }
  for (CoreId c = 0; c < static_cast<CoreId>(tlbs_.size()); ++c) {
    tlbs_[c]->set_trace(rec, rec != nullptr
                                 ? rec->track("tlb." + std::to_string(c))
                                 : 0);
  }
  mem_->set_trace(rec);
}

void CmpSystem::set_sampler(obs::IntervalSampler* s) {
  CDSIM_ASSERT_MSG(!ran_, "sampler must be attached before run()");
  sampler_ = s;
}

void CmpSystem::sample_window(Cycle wstart, Cycle wend) {
  CDSIM_ASSERT(wend > wstart);
  obs::SampleRow row;
  row.window_start = wstart;
  row.window_end = wend;
  const double dtd = static_cast<double>(wend - wstart);

  std::uint64_t instr = 0;
  std::uint64_t l2a = 0;
  std::uint64_t l2m = 0;
  double powered = 0.0;
  double cap_lines = 0.0;
  double temp_sum = 0.0;
  double temp_max = 0.0;
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    instr += cores_[c]->committed();
    const auto& st = l2s_[c]->stats();
    l2a += st.accesses();
    l2m += st.misses();
    powered += l2s_[c]->powered_line_cycles(wend);
    cap_lines += static_cast<double>(l2s_[c]->capacity_lines());
    const double t =
        floorplan_->model.temperature(floorplan_->l2_block(c));
    temp_sum += t;
    temp_max = std::max(temp_max, t);
  }
  row.instructions = instr - s_prev_instr_;
  row.l2_accesses = l2a - s_prev_l2_acc_;
  row.l2_misses = l2m - s_prev_l2_miss_;
  row.ipc = static_cast<double>(row.instructions) / dtd;
  row.l2_miss_rate = safe_div(static_cast<double>(row.l2_misses),
                              static_cast<double>(row.l2_accesses));
  row.l2_powered_frac = (powered - s_prev_l2_powered_) / (cap_lines * dtd);
  row.avg_l2_temp_kelvin = temp_sum / static_cast<double>(cfg_.num_cores);
  row.max_l2_temp_kelvin = temp_max;

  const mem::DramStats& ds = mem_->dram_stats();
  const std::uint64_t row_hits = ds.row_hits;
  const std::uint64_t row_activity =
      ds.row_hits + ds.row_misses + ds.row_conflicts;
  row.dram_row_hit_rate =
      safe_div(static_cast<double>(row_hits - s_prev_row_hits_),
               static_cast<double>(row_activity - s_prev_row_activity_));

  // utilization() is cumulative over [0, now]; busy cycles = util * now,
  // and the window's occupancy is the busy delta over the window length.
  const double fabric_busy =
      ic_->utilization(wend) * static_cast<double>(wend);
  row.fabric_occupancy =
      std::max(0.0, fabric_busy - s_prev_fabric_busy_) / dtd;

  sampler_->push(row);

  s_prev_instr_ = instr;
  s_prev_l2_acc_ = l2a;
  s_prev_l2_miss_ = l2m;
  s_prev_l2_powered_ = powered;
  s_prev_row_hits_ = row_hits;
  s_prev_row_activity_ = row_activity;
  s_prev_fabric_busy_ = fabric_busy;
}

void CmpSystem::arm_sampler() {
  eq_.schedule_in(cfg_.thermal.sample_period, [this] {
    if (cores_done_ >= cfg_.num_cores) return;  // final sample done in run()
    sample_power(eq_.now());
    arm_sampler();
  });
}

void CmpSystem::sample_power(Cycle upto) {
  CDSIM_ASSERT(upto >= last_sample_);
  const Cycle dt = upto - last_sample_;
  if (dt == 0) return;
  const double dtd = static_cast<double>(dt);
  const auto& pw = cfg_.power;
  const bool gated = decay::gates_invalid_lines(cfg_.decay.technique);
  const bool decaying = decay::uses_decay(cfg_.decay.technique);

  std::vector<double> watts(floorplan_->model.num_blocks(), 0.0);
  const double w_per_eu = cfg_.thermal.watts_per_eu_cycle;

  double bus_energy = 0.0;
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    const double t_core = cfg_.thermal_feedback
                              ? floorplan_->model.temperature(
                                    floorplan_->core_block(c))
                              : leak_model_.params().t0_kelvin;
    const double t_l2 = cfg_.thermal_feedback
                            ? floorplan_->model.temperature(
                                  floorplan_->l2_block(c))
                            : leak_model_.params().t0_kelvin;

    // --- core ---------------------------------------------------------------
    const std::uint64_t committed = cores_[c]->committed();
    const double d_instr =
        static_cast<double>(committed - prev_committed_[c]);
    prev_committed_[c] = committed;
    const double core_dyn = d_instr * pw.core_dyn_per_instr;
    const double core_leak =
        dtd * pw.core_leak_per_cycle * leak_model_.factor(t_core);
    ledger_.add(power::Component::kCoreDynamic, core_dyn);
    ledger_.add(power::Component::kCoreLeakage, core_leak);

    // --- L1 -------------------------------------------------------------------
    const std::uint64_t l1a = l1s_[c]->accesses();
    const double d_l1 = static_cast<double>(l1a - prev_l1_acc_[c]);
    prev_l1_acc_[c] = l1a;
    const double l1_dyn = d_l1 * pw.l1_dyn_per_access;
    double l1_leak;
    double l1_off_leak = 0.0;
    double l1_decay_ovh = 0.0;
    if (!decay::gates_invalid_lines(cfg_.l1_decay.technique)) {
      // Always-on L1 (the historical model): flat per-cycle leakage.
      l1_leak = dtd * pw.l1_leak_per_cycle * leak_model_.factor(t_core);
    } else {
      // Gated L1 (l1_decay active): only powered lines leak, scaled from
      // the same per-cache constant, plus the gated-off residual and the
      // decay counter overhead — the L2's leakage model applied at level 1,
      // with the same per-component ledger split (on-leak vs off-residual).
      const double per_line =
          pw.l1_leak_per_cycle /
          static_cast<double>(l1s_[c]->capacity_lines());
      const double cap_cycles_l1 =
          static_cast<double>(l1s_[c]->capacity_lines()) * dtd;
      const double powered_l1 = l1s_[c]->powered_line_cycles(upto);
      const double d_powered_l1 = powered_l1 - prev_l1_powered_[c];
      prev_l1_powered_[c] = powered_l1;
      const double lf1 = leak_model_.factor(t_core);
      l1_leak =
          d_powered_l1 * per_line * (1.0 + pw.gated_vdd_overhead) * lf1;
      l1_off_leak = std::max(0.0, cap_cycles_l1 - d_powered_l1) * per_line *
                    pw.off_residual_frac * lf1;
      ledger_.add(power::Component::kL1OffResidual, l1_off_leak);
      if (decay::uses_decay(cfg_.l1_decay.technique)) {
        l1_decay_ovh = cap_cycles_l1 * per_line *
                           pw.decay_counter_leak_frac * lf1 +
                       d_l1 * pw.decay_counter_dyn;
        ledger_.add(power::Component::kDecayOverhead, l1_decay_ovh);
      }
    }
    ledger_.add(power::Component::kL1Dynamic, l1_dyn);
    ledger_.add(power::Component::kL1Leakage, l1_leak);

    // --- L2 dynamic --------------------------------------------------------------
    const std::uint64_t l2a = l2s_[c]->stats().accesses();
    const std::uint64_t l2f = l2s_[c]->fills();
    const double d_l2a = static_cast<double>(l2a - prev_l2_acc_[c]);
    const double d_l2f = static_cast<double>(l2f - prev_l2_fills_[c]);
    prev_l2_acc_[c] = l2a;
    prev_l2_fills_[c] = l2f;
    const double l2_dyn =
        d_l2a * pw.l2_dyn_per_access + d_l2f * pw.l2_dyn_per_fill;
    ledger_.add(power::Component::kL2Dynamic, l2_dyn);

    // --- L2 leakage (the optimized component) -------------------------------------
    const double cap_cycles =
        static_cast<double>(l2s_[c]->capacity_lines()) * dtd;
    const double powered = l2s_[c]->powered_line_cycles(upto);
    const double d_powered = powered - prev_l2_powered_[c];
    prev_l2_powered_[c] = powered;
    const double lf = leak_model_.factor(t_l2);
    const double gating_mult = gated ? (1.0 + pw.gated_vdd_overhead) : 1.0;
    const double on_leak =
        d_powered * pw.l2_leak_per_line_cycle * gating_mult * lf;
    ledger_.add(power::Component::kL2Leakage, on_leak);
    double off_leak = 0.0;
    if (gated) {
      const double off_cycles = std::max(0.0, cap_cycles - d_powered);
      off_leak = off_cycles * pw.l2_leak_per_line_cycle *
                 pw.off_residual_frac * lf;
      ledger_.add(power::Component::kL2OffResidual, off_leak);
    }

    // --- decay hardware overhead ------------------------------------------------------
    double decay_ovh = 0.0;
    if (decaying) {
      // Per-line counters stay powered regardless of line state, and every
      // L2 access resets one.
      decay_ovh = cap_cycles * pw.l2_leak_per_line_cycle *
                      pw.decay_counter_leak_frac * lf +
                  d_l2a * pw.decay_counter_dyn;
      ledger_.add(power::Component::kDecayOverhead, decay_ovh);
    }

    // --- per-block power for the thermal step -----------------------------------------
    watts[floorplan_->core_block(c)] +=
        (core_dyn + core_leak + l1_dyn + l1_leak + l1_off_leak +
         l1_decay_ovh) /
        dtd * w_per_eu;
    watts[floorplan_->l2_block(c)] +=
        (l2_dyn + on_leak + off_leak + decay_ovh) / dtd * w_per_eu;
  }

  if (bus_ != nullptr) {
    const std::uint64_t bus_bytes = bus_->bytes_transferred();
    bus_energy = static_cast<double>(bus_bytes - prev_bus_bytes_) *
                 pw.bus_dyn_per_byte;
    prev_bus_bytes_ = bus_bytes;
    ledger_.add(power::Component::kBusDynamic, bus_energy);
  } else {
    // Mesh NoC: dynamic energy scales with link traversals (flit-hops),
    // not payload bytes — more hops, more switching.
    const std::uint64_t fh = mesh_->noc().flit_hops();
    bus_energy = static_cast<double>(fh - prev_noc_flit_hops_) *
                 pw.noc_dyn_per_flit_hop;
    prev_noc_flit_hops_ = fh;
    ledger_.add(power::Component::kNocDynamic, bus_energy);
  }
  // --- shared L3 home banks (three-level hierarchy) -------------------------
  if (l3_ != nullptr) {
    const bool l3_gated = decay::gates_invalid_lines(cfg_.l3_decay.technique);
    const bool l3_decaying = decay::uses_decay(cfg_.l3_decay.technique);
    // The floorplan has no dedicated L3 blocks; the banks sit on the tiles
    // next to the routers, so their heat is attributed to the interconnect
    // block (documented simplification).
    const double t_l3 = cfg_.thermal_feedback
                            ? floorplan_->model.temperature(
                                  floorplan_->bus_block())
                            : leak_model_.params().t0_kelvin;
    const double lf3 = leak_model_.factor(t_l3);

    const std::uint64_t l3a = l3_->accesses();
    const std::uint64_t l3f = l3_->fills();
    const double d_l3a = static_cast<double>(l3a - prev_l3_acc_);
    const double d_l3f = static_cast<double>(l3f - prev_l3_fills_);
    prev_l3_acc_ = l3a;
    prev_l3_fills_ = l3f;
    const double l3_dyn =
        d_l3a * pw.l3_dyn_per_access + d_l3f * pw.l3_dyn_per_fill;
    ledger_.add(power::Component::kL3Dynamic, l3_dyn);

    const double cap_cycles_l3 =
        static_cast<double>(l3_->capacity_lines()) * dtd;
    const double powered_l3 = l3_->powered_line_cycles(upto);
    const double d_powered_l3 = powered_l3 - prev_l3_powered_;
    prev_l3_powered_ = powered_l3;
    const double gating3 = l3_gated ? (1.0 + pw.gated_vdd_overhead) : 1.0;
    const double l3_on_leak =
        d_powered_l3 * pw.l3_leak_per_line_cycle * gating3 * lf3;
    ledger_.add(power::Component::kL3Leakage, l3_on_leak);
    double l3_off_leak = 0.0;
    if (l3_gated) {
      const double off_cycles = std::max(0.0, cap_cycles_l3 - d_powered_l3);
      l3_off_leak = off_cycles * pw.l3_leak_per_line_cycle *
                    pw.off_residual_frac * lf3;
      ledger_.add(power::Component::kL3OffResidual, l3_off_leak);
    }
    double l3_decay_ovh = 0.0;
    if (l3_decaying) {
      l3_decay_ovh = cap_cycles_l3 * pw.l3_leak_per_line_cycle *
                         pw.decay_counter_leak_frac * lf3 +
                     d_l3a * pw.decay_counter_dyn;
      ledger_.add(power::Component::kDecayOverhead, l3_decay_ovh);
    }
    watts[floorplan_->bus_block()] +=
        (l3_dyn + l3_on_leak + l3_off_leak + l3_decay_ovh) / dtd * w_per_eu;
  }

  watts[floorplan_->bus_block()] += bus_energy / dtd * w_per_eu;

  // Off-chip DRAM command energy (kDram only; flat stats are all zero).
  // Reported in the ledger but never attributed to an on-chip block — the
  // paper's "system" normalization excludes off-chip DRAM (§V, fn. 2).
  if (mem_->model() == mem::MemoryModel::kDram) {
    const mem::DramStats& ds = mem_->dram_stats();
    ledger_.add(power::Component::kDramActivate,
                static_cast<double>(ds.activates - prev_dram_act_) *
                    pw.dram_act_energy);
    ledger_.add(power::Component::kDramPrecharge,
                static_cast<double>(ds.precharges - prev_dram_pre_) *
                    pw.dram_pre_energy);
    prev_dram_act_ = ds.activates;
    prev_dram_pre_ = ds.precharges;
  }

  if (cfg_.thermal_feedback) {
    const double dt_sec =
        dtd / cfg_.thermal.clock_hz;
    floorplan_->model.step(dt_sec, watts);
  }
  last_sample_ = upto;
}

RunMetrics CmpSystem::run() {
  CDSIM_ASSERT_MSG(!ran_, "CmpSystem::run() may be called once");
  ran_ = true;

  for (auto& l1 : l1s_) l1->start();
  for (auto& l2 : l2s_) l2->start();
  if (l3_ != nullptr) l3_->start();
  for (auto& core : cores_) {
    core->start([this] { ++cores_done_; });
  }
  arm_sampler();
  if (sampler_ != nullptr) {
    sampler_wstart_ = 0;
    sampler_next_ = sampler_->period();
  }

  {
    // Inclusive run-loop total for the host profiler; the subsystem scopes
    // (decay sweep, fabric, DRAM, oracle) nest inside it.
    const prof::ScopedPhase dispatch_scope(prof::Phase::kEventDispatch);
    while (cores_done_ < cfg_.num_cores) {
      const bool progressed = eq_.step();
      CDSIM_ASSERT_MSG(progressed, "deadlock: event queue drained early");
      if (sampler_ != nullptr) {
        // Loop-driven, never event-driven: emitting a window cannot change
        // the event schedule, so the golden pins hold with a sampler
        // attached. Boundaries quantize to event execution times.
        while (eq_.now() >= sampler_next_) {
          sample_window(sampler_wstart_, sampler_next_);
          sampler_wstart_ = sampler_next_;
          sampler_next_ += sampler_->period();
        }
      }
    }
  }

  const Cycle end = eq_.now();
  if (sampler_ != nullptr && end > sampler_wstart_) {
    sample_window(sampler_wstart_, end);  // final partial window
  }
  sample_power(end);  // close the final partial window
  for (auto& l1 : l1s_) l1->stop();
  for (auto& l2 : l2s_) l2->stop();
  if (l3_ != nullptr) l3_->stop();
  return collect(end);
}

RunMetrics CmpSystem::collect(Cycle end) const {
  RunMetrics m;
  m.benchmark = bench_.config.name;
  m.technique = cfg_.decay.label();
  m.total_l2_bytes = cfg_.total_l2_bytes;
  m.cycles = end;

  double occ_sum = 0.0;
  double lat_sum = 0.0;
  std::uint64_t lat_n = 0;
  double temp_sum = 0.0;
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    m.instructions += cores_[c]->committed();
    occ_sum += l2s_[c]->occupation(end);
    const auto& st = l2s_[c]->stats();
    m.l2_accesses += st.accesses();
    m.l2_misses += st.misses();
    m.l2_decay_turnoffs += st.decay_turnoffs.value();
    m.l2_decay_induced_misses += st.decay_induced_misses.value();
    m.l2_coherence_invals += st.coherence_invals.value();
    m.l2_writebacks += st.writebacks.value();
    const auto& h = cores_[c]->load_latency();
    lat_sum += h.mean() * static_cast<double>(h.count());
    lat_n += h.count();
    temp_sum += floorplan_->model.temperature(floorplan_->l2_block(c));
  }
  m.ipc = safe_div(static_cast<double>(m.instructions),
                   static_cast<double>(end));
  m.l2_occupation = occ_sum / static_cast<double>(cfg_.num_cores);
  m.l2_miss_rate = safe_div(static_cast<double>(m.l2_misses),
                            static_cast<double>(m.l2_accesses));
  m.amat = safe_div(lat_sum, static_cast<double>(lat_n));
  m.mem_bytes = mem_->total_bytes();
  m.mem_bandwidth = mem_->bandwidth(end);
  m.energy = ledger_.total();
  m.ledger = ledger_;
  m.avg_l2_temp_kelvin = temp_sum / static_cast<double>(cfg_.num_cores);
  m.bus_utilization = ic_->utilization(end);
  m.topology = std::string(noc::to_string(cfg_.topology));
  if (mesh_ != nullptr) {
    m.noc_flit_hops = mesh_->noc().flit_hops();
    m.noc_avg_packet_latency = mesh_->noc().avg_packet_latency();
    m.dir_directed_snoops = mesh_->directory().stats().directed_snoops.value();
    m.dir_recalls = mesh_->recalls();
    m.dir_deferrals = mesh_->deferrals();
  }

  // --- per-level attribution (cache-v4) -------------------------------------
  m.hierarchy = std::string(to_string(cfg_.hierarchy));
  double l1_powered = 0.0;
  double l1_cap = 0.0;
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    const auto& st = l1s_[c]->stats();
    m.l1.accesses += st.accesses();
    m.l1.hits += st.read_hits.value() + st.write_hits.value();
    m.l1.misses += st.misses();
    m.l1.decay_turnoffs += st.decay_turnoffs.value();
    m.l1.decay_induced_misses += st.decay_induced_misses.value();
    m.l1.writebacks += st.writebacks.value();  // 0: write-through
    l1_powered += l1s_[c]->powered_line_cycles(end);
    l1_cap += static_cast<double>(l1s_[c]->capacity_lines());
  }
  m.l1.occupation =
      end == 0 ? 1.0 : l1_powered / (l1_cap * static_cast<double>(end));
  m.l2.accesses = m.l2_accesses;
  m.l2.hits = m.l2_accesses - m.l2_misses;
  m.l2.misses = m.l2_misses;
  m.l2.decay_turnoffs = m.l2_decay_turnoffs;
  m.l2.decay_induced_misses = m.l2_decay_induced_misses;
  m.l2.writebacks = m.l2_writebacks;
  m.l2.occupation = m.l2_occupation;
  if (l3_ != nullptr) {
    m.total_l3_bytes = cfg_.total_l3_bytes;
    m.l3.accesses = l3_->accesses();
    m.l3.hits = l3_->hits();
    m.l3.misses = l3_->misses();
    m.l3.decay_turnoffs = l3_->decay_turnoffs();
    m.l3.decay_induced_misses = l3_->decay_induced_misses();
    m.l3.writebacks = l3_->writebacks();
    m.l3.occupation = l3_->occupation(end);
  }

  // --- memory side (cache-v5) -----------------------------------------------
  m.mem_model = std::string(mem::to_string(cfg_.mem.model));
  const mem::DramStats& ds = mem_->dram_stats();
  m.dram_row_hits = ds.row_hits;
  m.dram_row_misses = ds.row_misses;
  m.dram_row_conflicts = ds.row_conflicts;
  m.dram_activates = ds.activates;
  m.dram_precharges = ds.precharges;
  m.dram_refreshes = ds.refreshes;
  m.dram_write_forwards = ds.write_forwards;
  for (const auto& t : tlbs_) {
    m.tlb_hits += t->tlb().hits();
    m.tlb_misses += t->tlb().misses();
  }
  return m;
}

std::uint64_t CmpSystem::check_coherence_invariants() const {
  using coherence::MesiState;
  std::uint64_t checked = 0;

  // Single-writer: a line owned (M/E/TD) by one L2 must not be valid in any
  // other L2. Lines mid-fill (`fetching`) still expose their installed
  // state, so this holds at every instant of the simulation.
  //
  // MOESI relaxations: an Owned line coexists with remote Shared copies
  // (but never with another dirty/exclusive owner), and a TransientDirty
  // line may coexist with Shared copies while an O turn-off's
  // ownership-revocation broadcast is still queued.
  const bool moesi = cfg_.protocol == coherence::Protocol::kMoesi;
  for (CoreId a = 0; a < cfg_.num_cores; ++a) {
    l2s_[a]->for_each_valid_line([&](Addr line, MesiState sa) {
      ++checked;
      const bool exclusive_owner = sa == MesiState::kModified ||
                                   sa == MesiState::kExclusive ||
                                   sa == MesiState::kTransientDirty;
      const bool shared_owner = sa == MesiState::kOwned;
      if (!exclusive_owner && !shared_owner) return;
      for (CoreId b = 0; b < cfg_.num_cores; ++b) {
        if (b == a) continue;
        const MesiState sb = l2s_[b]->line_state(line);
        if (exclusive_owner &&
            (!moesi || sa != MesiState::kTransientDirty)) {
          CDSIM_ASSERT_MSG(sb == MesiState::kInvalid,
                           "single-writer invariant violated");
        } else {
          // Owned (or MOESI TD mid-revocation): S replicas are legal —
          // including one frozen mid clean-turn-off (TC; the run can end
          // inside the 2-cycle InvUpp window) — a second owner of any
          // flavor is not.
          CDSIM_ASSERT_MSG(sb == MesiState::kInvalid ||
                               sb == MesiState::kShared ||
                               sb == MesiState::kTransientClean,
                           "single-owner invariant violated");
        }
      }
    });
  }

  // Inclusion: every valid L1 line must be backed by a data-holding line in
  // its private L2.
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    l1s_[c]->for_each_valid_line([&](Addr line) {
      ++checked;
      const MesiState s = l2s_[c]->line_state(line);
      CDSIM_ASSERT_MSG(coherence::holds_data(s),
                       "inclusion invariant violated");
    });
  }

  // Directory tracking: every valid L2 copy must be a tracked sharer at its
  // home, and every exclusive-flavored holder must be the recorded owner
  // (kept exact by grant-time probes + clean-drop notifications).
  if (mesh_ != nullptr) {
    const coherence::Directory& dir = mesh_->directory();
    for (CoreId c = 0; c < cfg_.num_cores; ++c) {
      l2s_[c]->for_each_valid_line([&](Addr line, MesiState s) {
        ++checked;
        const coherence::DirectoryEntry* e = dir.find(line);
        CDSIM_ASSERT_MSG(e != nullptr && e->tracked(c),
                         "directory lost a live sharer");
        if (s == MesiState::kExclusive || s == MesiState::kModified ||
            s == MesiState::kOwned || s == MesiState::kTransientDirty) {
          CDSIM_ASSERT_MSG(e->owner == c, "directory owner out of sync");
        }
      });
    }
  }
  return checked;
}

}  // namespace cdsim::sim
