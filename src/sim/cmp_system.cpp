#include "cdsim/sim/cmp_system.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "cdsim/common/assert.hpp"

namespace cdsim::sim {

void validate_system_config(const SystemConfig& cfg) {
  const auto fail = [](const std::string& why) {
    throw std::invalid_argument("SystemConfig: " + why);
  };
  if (cfg.num_cores == 0) fail("num_cores must be at least 1");
  if (cfg.num_cores > 64) {
    fail("num_cores " + std::to_string(cfg.num_cores) +
         " exceeds 64 (the directory's sharer bitmap width)");
  }
  if (cfg.total_l2_bytes == 0 ||
      cfg.total_l2_bytes % cfg.num_cores != 0) {
    fail("total_l2_bytes " + std::to_string(cfg.total_l2_bytes) +
         " is not divisible into " + std::to_string(cfg.num_cores) +
         " per-core slices");
  }
  if (cfg.topology == noc::Topology::kDirectoryMesh &&
      !is_pow2(cfg.num_cores)) {
    fail("num_cores " + std::to_string(cfg.num_cores) +
         " must be a power of two for the mesh tile grid");
  }
  if (!cfg.per_core_instructions.empty() &&
      cfg.per_core_instructions.size() != cfg.num_cores) {
    fail("per_core_instructions has " +
         std::to_string(cfg.per_core_instructions.size()) +
         " entries; expected 0 or num_cores (" +
         std::to_string(cfg.num_cores) + ")");
  }
}

CmpSystem::CmpSystem(const SystemConfig& cfg, const workload::Benchmark& bench,
                     const workload::StreamFactory& streams)
    : cfg_(cfg), bench_(bench), leak_model_(cfg.leakage) {
  validate_system_config(cfg_);

  mem_ = std::make_unique<mem::MemoryController>(eq_, cfg_.mem);
  if (cfg_.topology == noc::Topology::kSnoopBus) {
    bus_ = std::make_unique<bus::SnoopBus>(eq_, cfg_.bus, *mem_);
    ic_ = bus_.get();
  } else {
    noc::DirectoryMeshConfig dcfg = cfg_.dmesh;
    dcfg.home_interleave_bytes = cfg_.l2.line_bytes;
    mesh_ = std::make_unique<noc::DirectoryMesh>(eq_, dcfg, *mem_,
                                                 cfg_.num_cores);
    ic_ = mesh_.get();
  }

  L2Config l2cfg = cfg_.l2;
  l2cfg.size_bytes = cfg_.total_l2_bytes / cfg_.num_cores;
  l2cfg.protocol = cfg_.protocol;

  const double slice_mb = static_cast<double>(l2cfg.size_bytes) /
                          static_cast<double>(MiB);
  floorplan_ = std::make_unique<thermal::Floorplan>(
      thermal::make_cmp_floorplan(cfg_.thermal, cfg_.num_cores, slice_mb));

  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    l1s_.push_back(std::make_unique<L1Cache>(eq_, cfg_.l1, c));
    l2s_.push_back(std::make_unique<L2Cache>(eq_, l2cfg, cfg_.decay, c,
                                             *ic_, l1s_.back().get()));
    l1s_.back()->connect_l2(l2s_.back().get());
    ic_->attach(l2s_.back().get());

    streams_.push_back(streams ? streams(c, cfg_.seed)
                               : workload::make_stream(bench_, c, cfg_.seed));
    const std::uint64_t budget = cfg_.per_core_instructions.empty()
                                     ? cfg_.instructions_per_core
                                     : cfg_.per_core_instructions[c];
    cores_.push_back(std::make_unique<core::CoreModel>(
        eq_, cfg_.core, c, *streams_.back(), *l1s_.back(), budget));
  }

  // Warm-start the thermal network near equilibrium so short runs operate
  // at representative temperatures (see rc_model.hpp header note).
  const double cw = cfg_.thermal.watts_per_eu_cycle;
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    const double core_w =
        (cfg_.power.core_leak_per_cycle + cfg_.power.core_dyn_per_instr) * cw;
    floorplan_->model.warm_start(floorplan_->core_block(c), core_w);
    const double l2_lines =
        static_cast<double>(l2s_[c]->capacity_lines());
    const double l2_w = l2_lines * cfg_.power.l2_leak_per_line_cycle * cw;
    floorplan_->model.warm_start(floorplan_->l2_block(c), l2_w);
  }

  prev_committed_.assign(cfg_.num_cores, 0);
  prev_l1_acc_.assign(cfg_.num_cores, 0);
  prev_l2_acc_.assign(cfg_.num_cores, 0);
  prev_l2_fills_.assign(cfg_.num_cores, 0);
  prev_l2_powered_.assign(cfg_.num_cores, 0.0);
}

CmpSystem::~CmpSystem() = default;

void CmpSystem::set_observer(verify::AccessObserver* obs) {
  CDSIM_ASSERT_MSG(!ran_, "observer must be attached before run()");
  ic_->set_observer(obs);
  for (auto& l1 : l1s_) l1->set_observer(obs);
  for (auto& l2 : l2s_) l2->set_observer(obs);
}

void CmpSystem::arm_sampler() {
  eq_.schedule_in(cfg_.thermal.sample_period, [this] {
    if (cores_done_ >= cfg_.num_cores) return;  // final sample done in run()
    sample_power(eq_.now());
    arm_sampler();
  });
}

void CmpSystem::sample_power(Cycle upto) {
  CDSIM_ASSERT(upto >= last_sample_);
  const Cycle dt = upto - last_sample_;
  if (dt == 0) return;
  const double dtd = static_cast<double>(dt);
  const auto& pw = cfg_.power;
  const bool gated = decay::gates_invalid_lines(cfg_.decay.technique);
  const bool decaying = decay::uses_decay(cfg_.decay.technique);

  std::vector<double> watts(floorplan_->model.num_blocks(), 0.0);
  const double w_per_eu = cfg_.thermal.watts_per_eu_cycle;

  double bus_energy = 0.0;
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    const double t_core = cfg_.thermal_feedback
                              ? floorplan_->model.temperature(
                                    floorplan_->core_block(c))
                              : leak_model_.params().t0_kelvin;
    const double t_l2 = cfg_.thermal_feedback
                            ? floorplan_->model.temperature(
                                  floorplan_->l2_block(c))
                            : leak_model_.params().t0_kelvin;

    // --- core ---------------------------------------------------------------
    const std::uint64_t committed = cores_[c]->committed();
    const double d_instr =
        static_cast<double>(committed - prev_committed_[c]);
    prev_committed_[c] = committed;
    const double core_dyn = d_instr * pw.core_dyn_per_instr;
    const double core_leak =
        dtd * pw.core_leak_per_cycle * leak_model_.factor(t_core);
    ledger_.add(power::Component::kCoreDynamic, core_dyn);
    ledger_.add(power::Component::kCoreLeakage, core_leak);

    // --- L1 -------------------------------------------------------------------
    const std::uint64_t l1a = l1s_[c]->accesses();
    const double d_l1 = static_cast<double>(l1a - prev_l1_acc_[c]);
    prev_l1_acc_[c] = l1a;
    const double l1_dyn = d_l1 * pw.l1_dyn_per_access;
    const double l1_leak =
        dtd * pw.l1_leak_per_cycle * leak_model_.factor(t_core);
    ledger_.add(power::Component::kL1Dynamic, l1_dyn);
    ledger_.add(power::Component::kL1Leakage, l1_leak);

    // --- L2 dynamic --------------------------------------------------------------
    const std::uint64_t l2a = l2s_[c]->stats().accesses();
    const std::uint64_t l2f = l2s_[c]->fills();
    const double d_l2a = static_cast<double>(l2a - prev_l2_acc_[c]);
    const double d_l2f = static_cast<double>(l2f - prev_l2_fills_[c]);
    prev_l2_acc_[c] = l2a;
    prev_l2_fills_[c] = l2f;
    const double l2_dyn =
        d_l2a * pw.l2_dyn_per_access + d_l2f * pw.l2_dyn_per_fill;
    ledger_.add(power::Component::kL2Dynamic, l2_dyn);

    // --- L2 leakage (the optimized component) -------------------------------------
    const double cap_cycles =
        static_cast<double>(l2s_[c]->capacity_lines()) * dtd;
    const double powered = l2s_[c]->powered_line_cycles(upto);
    const double d_powered = powered - prev_l2_powered_[c];
    prev_l2_powered_[c] = powered;
    const double lf = leak_model_.factor(t_l2);
    const double gating_mult = gated ? (1.0 + pw.gated_vdd_overhead) : 1.0;
    const double on_leak =
        d_powered * pw.l2_leak_per_line_cycle * gating_mult * lf;
    ledger_.add(power::Component::kL2Leakage, on_leak);
    double off_leak = 0.0;
    if (gated) {
      const double off_cycles = std::max(0.0, cap_cycles - d_powered);
      off_leak = off_cycles * pw.l2_leak_per_line_cycle *
                 pw.off_residual_frac * lf;
      ledger_.add(power::Component::kL2OffResidual, off_leak);
    }

    // --- decay hardware overhead ------------------------------------------------------
    double decay_ovh = 0.0;
    if (decaying) {
      // Per-line counters stay powered regardless of line state, and every
      // L2 access resets one.
      decay_ovh = cap_cycles * pw.l2_leak_per_line_cycle *
                      pw.decay_counter_leak_frac * lf +
                  d_l2a * pw.decay_counter_dyn;
      ledger_.add(power::Component::kDecayOverhead, decay_ovh);
    }

    // --- per-block power for the thermal step -----------------------------------------
    watts[floorplan_->core_block(c)] +=
        (core_dyn + core_leak + l1_dyn + l1_leak) / dtd * w_per_eu;
    watts[floorplan_->l2_block(c)] +=
        (l2_dyn + on_leak + off_leak + decay_ovh) / dtd * w_per_eu;
  }

  if (bus_ != nullptr) {
    const std::uint64_t bus_bytes = bus_->bytes_transferred();
    bus_energy = static_cast<double>(bus_bytes - prev_bus_bytes_) *
                 pw.bus_dyn_per_byte;
    prev_bus_bytes_ = bus_bytes;
    ledger_.add(power::Component::kBusDynamic, bus_energy);
  } else {
    // Mesh NoC: dynamic energy scales with link traversals (flit-hops),
    // not payload bytes — more hops, more switching.
    const std::uint64_t fh = mesh_->noc().flit_hops();
    bus_energy = static_cast<double>(fh - prev_noc_flit_hops_) *
                 pw.noc_dyn_per_flit_hop;
    prev_noc_flit_hops_ = fh;
    ledger_.add(power::Component::kNocDynamic, bus_energy);
  }
  watts[floorplan_->bus_block()] += bus_energy / dtd * w_per_eu;

  if (cfg_.thermal_feedback) {
    const double dt_sec =
        dtd / cfg_.thermal.clock_hz;
    floorplan_->model.step(dt_sec, watts);
  }
  last_sample_ = upto;
}

RunMetrics CmpSystem::run() {
  CDSIM_ASSERT_MSG(!ran_, "CmpSystem::run() may be called once");
  ran_ = true;

  for (auto& l2 : l2s_) l2->start();
  for (auto& core : cores_) {
    core->start([this] { ++cores_done_; });
  }
  arm_sampler();

  while (cores_done_ < cfg_.num_cores) {
    const bool progressed = eq_.step();
    CDSIM_ASSERT_MSG(progressed, "deadlock: event queue drained early");
  }

  const Cycle end = eq_.now();
  sample_power(end);  // close the final partial window
  for (auto& l2 : l2s_) l2->stop();
  return collect(end);
}

RunMetrics CmpSystem::collect(Cycle end) const {
  RunMetrics m;
  m.benchmark = bench_.config.name;
  m.technique = cfg_.decay.label();
  m.total_l2_bytes = cfg_.total_l2_bytes;
  m.cycles = end;

  double occ_sum = 0.0;
  double lat_sum = 0.0;
  std::uint64_t lat_n = 0;
  double temp_sum = 0.0;
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    m.instructions += cores_[c]->committed();
    occ_sum += l2s_[c]->occupation(end);
    const auto& st = l2s_[c]->stats();
    m.l2_accesses += st.accesses();
    m.l2_misses += st.misses();
    m.l2_decay_turnoffs += st.decay_turnoffs.value();
    m.l2_decay_induced_misses += st.decay_induced_misses.value();
    m.l2_coherence_invals += st.coherence_invals.value();
    m.l2_writebacks += st.writebacks.value();
    const auto& h = cores_[c]->load_latency();
    lat_sum += h.mean() * static_cast<double>(h.count());
    lat_n += h.count();
    temp_sum += floorplan_->model.temperature(floorplan_->l2_block(c));
  }
  m.ipc = safe_div(static_cast<double>(m.instructions),
                   static_cast<double>(end));
  m.l2_occupation = occ_sum / static_cast<double>(cfg_.num_cores);
  m.l2_miss_rate = safe_div(static_cast<double>(m.l2_misses),
                            static_cast<double>(m.l2_accesses));
  m.amat = safe_div(lat_sum, static_cast<double>(lat_n));
  m.mem_bytes = mem_->total_bytes();
  m.mem_bandwidth = mem_->bandwidth(end);
  m.energy = ledger_.total();
  m.ledger = ledger_;
  m.avg_l2_temp_kelvin = temp_sum / static_cast<double>(cfg_.num_cores);
  m.bus_utilization = ic_->utilization(end);
  m.topology = std::string(noc::to_string(cfg_.topology));
  if (mesh_ != nullptr) {
    m.noc_flit_hops = mesh_->noc().flit_hops();
    m.noc_avg_packet_latency = mesh_->noc().avg_packet_latency();
    m.dir_directed_snoops = mesh_->directory().stats().directed_snoops.value();
    m.dir_recalls = mesh_->recalls();
    m.dir_deferrals = mesh_->deferrals();
  }
  return m;
}

std::uint64_t CmpSystem::check_coherence_invariants() const {
  using coherence::MesiState;
  std::uint64_t checked = 0;

  // Single-writer: a line owned (M/E/TD) by one L2 must not be valid in any
  // other L2. Lines mid-fill (`fetching`) still expose their installed
  // state, so this holds at every instant of the simulation.
  //
  // MOESI relaxations: an Owned line coexists with remote Shared copies
  // (but never with another dirty/exclusive owner), and a TransientDirty
  // line may coexist with Shared copies while an O turn-off's
  // ownership-revocation broadcast is still queued.
  const bool moesi = cfg_.protocol == coherence::Protocol::kMoesi;
  for (CoreId a = 0; a < cfg_.num_cores; ++a) {
    l2s_[a]->for_each_valid_line([&](Addr line, MesiState sa) {
      ++checked;
      const bool exclusive_owner = sa == MesiState::kModified ||
                                   sa == MesiState::kExclusive ||
                                   sa == MesiState::kTransientDirty;
      const bool shared_owner = sa == MesiState::kOwned;
      if (!exclusive_owner && !shared_owner) return;
      for (CoreId b = 0; b < cfg_.num_cores; ++b) {
        if (b == a) continue;
        const MesiState sb = l2s_[b]->line_state(line);
        if (exclusive_owner &&
            (!moesi || sa != MesiState::kTransientDirty)) {
          CDSIM_ASSERT_MSG(sb == MesiState::kInvalid,
                           "single-writer invariant violated");
        } else {
          // Owned (or MOESI TD mid-revocation): S replicas are legal,
          // a second owner of any flavor is not.
          CDSIM_ASSERT_MSG(sb == MesiState::kInvalid ||
                               sb == MesiState::kShared,
                           "single-owner invariant violated");
        }
      }
    });
  }

  // Inclusion: every valid L1 line must be backed by a data-holding line in
  // its private L2.
  for (CoreId c = 0; c < cfg_.num_cores; ++c) {
    l1s_[c]->for_each_valid_line([&](Addr line) {
      ++checked;
      const MesiState s = l2s_[c]->line_state(line);
      CDSIM_ASSERT_MSG(coherence::holds_data(s),
                       "inclusion invariant violated");
    });
  }

  // Directory tracking: every valid L2 copy must be a tracked sharer at its
  // home, and every exclusive-flavored holder must be the recorded owner
  // (kept exact by grant-time probes + clean-drop notifications).
  if (mesh_ != nullptr) {
    const coherence::Directory& dir = mesh_->directory();
    for (CoreId c = 0; c < cfg_.num_cores; ++c) {
      l2s_[c]->for_each_valid_line([&](Addr line, MesiState s) {
        ++checked;
        const coherence::DirectoryEntry* e = dir.find(line);
        CDSIM_ASSERT_MSG(e != nullptr && e->tracked(c),
                         "directory lost a live sharer");
        if (s == MesiState::kExclusive || s == MesiState::kModified ||
            s == MesiState::kOwned || s == MesiState::kTransientDirty) {
          CDSIM_ASSERT_MSG(e->owner == c, "directory owner out of sync");
        }
      });
    }
  }
  return checked;
}

}  // namespace cdsim::sim
