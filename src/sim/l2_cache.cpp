#include "cdsim/sim/l2_cache.hpp"

#include <algorithm>
#include <utility>

#include "cdsim/common/assert.hpp"
#include "cdsim/common/host_timer.hpp"

namespace cdsim::sim {

using coherence::BusTxKind;
using coherence::MesiState;

namespace {
cache::LevelPolicy l2_policy() {
  cache::LevelPolicy p;
  p.name = "L2";
  p.allocate_on_write = true;   // write-allocate via BusRdX
  p.write_through = false;      // dirty lines write back
  p.inclusive_above = true;     // back-invalidates the L1 on line death
  p.coherent = true;            // MESI/MOESI snooper on the fabric
  p.write_buffer_entries = 0;
  return p;
}

cache::LevelTiming l2_timing(const L2Config& cfg) {
  return cache::LevelTiming{cfg.hit_latency, cfg.mshr_entries,
                            cfg.retry_interval};
}
}  // namespace

L2Cache::L2Cache(EventQueue& eq, const L2Config& cfg,
                 const decay::DecayConfig& dcfg, CoreId core,
                 noc::Interconnect& ic, L1Cache* upper)
    : eq_(eq),
      cfg_(cfg),
      core_(core),
      ic_(ic),
      upper_(upper),
      level_(eq, cache::Geometry(cfg.size_bytes, cfg.line_bytes, cfg.ways),
             l2_timing(cfg), dcfg, l2_policy(),
             [this](Cycle now) { decay_sweep(now); }) {
  CDSIM_ASSERT(upper_ != nullptr);
}

void L2Cache::start() { level_.start(); }
void L2Cache::stop() { level_.stop(); }

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

void L2Cache::cancel_td_wb(Payload& p) {
  if (p.td_wb_token) {
    *p.td_wb_token = false;
    p.td_wb_token.reset();
  }
}

void L2Cache::line_off(LineT ln) {
  CDSIM_ASSERT(ln.valid());
  if (obs_) obs_->on_invalidate(core_, ln.tag(), eq_.now());
  cancel_td_wb(ln.payload());
  ln.payload().state = MesiState::kInvalid;
  ln.payload().fetching = false;
  ln.payload().upgrading = false;
  level_.tags().invalidate(ln);
  level_.power_off();
}

coherence::MesiState L2Cache::line_state(Addr addr) const {
  const Addr line = level_.geometry().line_addr(addr);
  const LineT ln = level_.tags().find(line);
  return ln ? ln.payload().state : MesiState::kInvalid;
}

void L2Cache::for_each_valid_line(
    const std::function<void(Addr, coherence::MesiState)>& fn) const {
  const_cast<cache::TagArray<Payload>&>(level_.tags())
      .for_each_valid([&](LineT ln) { fn(ln.tag(), ln.payload().state); });
}

// ---------------------------------------------------------------------------
// Upper-level requests
// ---------------------------------------------------------------------------

void L2Cache::read(Addr addr, Response on_done) {
  const Addr line = level_.geometry().line_addr(addr);
  do_read(line, std::move(on_done), /*counted=*/false);
}

void L2Cache::do_read(Addr line_addr, Response on_done, bool counted) {
  LineT ln = level_.tags().find(line_addr);

  if (ln && !coherence::is_stationary(ln.payload().state)) {
    // TC/TD: the paper requires requests to wait for a stationary state.
    level_.transient_retries().inc();
    retry([this, line_addr, cb = std::move(on_done), counted]() mutable {
      do_read(line_addr, std::move(cb), counted);
    });
    return;
  }

  if (ln && !ln.payload().fetching) {
    // Hit on a stationary line.
    if (!counted) level_.stats().read_hits.inc();
    if (obs_) obs_->on_load_hit(core_, line_addr, eq_.now(), /*l1=*/false);
    level_.touch(ln);
    const Cycle done = eq_.now() + level_.access_latency();
    eq_.schedule_at(done, [cb = std::move(on_done), done] { cb(done, true); });
    return;
  }

  // Miss, or data still in flight for an installed tag: merge or fetch.
  // The fill responder re-checks the tag at completion time: a line
  // invalidated while its fill was in flight must not be cached above.
  auto fill_responder = [this, line_addr](Response cb) {
    return [this, line_addr, cb = std::move(cb)](Cycle fill_done) {
      LineT l2 = level_.tags().find(line_addr);
      const bool may_cache =
          static_cast<bool>(l2) && coherence::holds_data(l2.payload().state);
      cb(fill_done, may_cache);
    };
  };

  if (cache::MshrEntry* e = level_.mshr().find(line_addr)) {
    if (!counted) level_.note_miss(line_addr, /*is_write=*/false);
    level_.mshr().merge(*e, /*is_write=*/false,
                        fill_responder(std::move(on_done)));
    return;
  }
  CDSIM_ASSERT_MSG(!ln || !ln.payload().fetching,
                   "fetching line without an MSHR entry");

  if (level_.mshr().full()) {
    retry([this, line_addr, cb = std::move(on_done), counted]() mutable {
      // Re-enter through do_read so a line filled meanwhile becomes a hit.
      do_read(line_addr, std::move(cb), counted);
    });
    return;
  }

  if (!counted) level_.note_miss(line_addr, /*is_write=*/false);
  cache::MshrEntry& e =
      level_.mshr().allocate(line_addr, /*is_write=*/false, eq_.now());
  level_.mshr().merge(e, /*is_write=*/false,
                      fill_responder(std::move(on_done)));
  issue_fetch(line_addr, /*is_write=*/false);
}

void L2Cache::write(Addr addr, Response on_done) {
  const Addr line = level_.geometry().line_addr(addr);
  do_write(line, std::move(on_done), /*counted=*/false);
}

void L2Cache::do_write(Addr line_addr, Response on_done, bool counted) {
  LineT ln = level_.tags().find(line_addr);

  if (ln && !coherence::is_stationary(ln.payload().state)) {
    level_.transient_retries().inc();
    retry([this, line_addr, cb = std::move(on_done), counted]() mutable {
      do_write(line_addr, std::move(cb), counted);
    });
    return;
  }

  if (ln && ln.payload().fetching) {
    // Write arriving while the line's fill is in flight: retire it after
    // the fill by re-entering (it will then hit, upgrade, or re-miss).
    // Counting waits for that re-entry: if a snoop invalidates the line
    // before the fill lands, this is a genuine write miss (with its own
    // refetch and decay attribution), not the hit it looks like now.
    cache::MshrEntry* e = level_.mshr().find(line_addr);
    CDSIM_ASSERT_MSG(e != nullptr, "fetching line without an MSHR entry");
    auto waiter = [this, line_addr, cb = std::move(on_done),
                   counted](Cycle) mutable {
      do_write(line_addr, std::move(cb), counted);
    };
    // The largest waiter on the write path; must not fall back to the heap.
    static_assert(cache::FillCallback::fits_inline_v<decltype(waiter)>);
    level_.mshr().merge(*e, /*is_write=*/true, std::move(waiter));
    return;
  }

  if (ln) {
    Payload& p = ln.payload();
    switch (p.state) {
      case MesiState::kModified: {
        if (!counted) level_.stats().write_hits.inc();
        if (obs_) obs_->on_write_serialized(core_, line_addr, eq_.now());
        level_.touch(ln);
        const Cycle done = eq_.now() + level_.access_latency();
        eq_.schedule_at(done,
                        [cb = std::move(on_done), done] { cb(done, true); });
        return;
      }
      case MesiState::kExclusive: {
        // Silent E->M upgrade (PrWr/- edge).
        if (!counted) level_.stats().write_hits.inc();
        p.state = MesiState::kModified;
        level_.arm_on_entry(p.decay, MesiState::kModified);
        if (obs_) obs_->on_write_serialized(core_, line_addr, eq_.now());
        level_.touch(ln);
        const Cycle done = eq_.now() + level_.access_latency();
        eq_.schedule_at(done,
                        [cb = std::move(on_done), done] { cb(done, true); });
        return;
      }
      case MesiState::kOwned:  // MOESI: dirty-shared still needs the Upgr
      case MesiState::kShared: {
        if (p.upgrading) {
          // A previous store's upgrade is already in flight; retire this
          // one after it resolves.
          retry([this, line_addr, cb = std::move(on_done),
                 counted]() mutable {
            do_write(line_addr, std::move(cb), counted);
          });
          return;
        }
        if (!counted) upgrades_.inc();
        p.upgrading = true;
        level_.touch(ln);

        // Exactly one of on_done / on_cancel fires; share the response.
        auto cb = std::make_shared<Response>(std::move(on_done));
        noc::RequestHooks hooks;
        // Only meaningful while the line is still our upgradable (Shared or
        // Owned) copy; a snoop invalidation while queued turns the upgrade
        // into a write miss.
        hooks.validator = [this, line_addr] {
          LineT l2 = level_.tags().find(line_addr);
          return static_cast<bool>(l2) &&
                 (l2.payload().state == MesiState::kShared ||
                  l2.payload().state == MesiState::kOwned);
        };
        // The hit is only known at the grant: a cancelled upgrade re-enters
        // as an ordinary (still uncounted) write so the resulting miss is
        // recorded in write_misses and runs through note_miss — counting it
        // as a hit up front would silently drop decay-induced attribution.
        hooks.on_cancel = [this, line_addr, cb, counted] {
          if (LineT l2 = level_.tags().find(line_addr)) {
            l2.payload().upgrading = false;
          }
          do_write(line_addr, std::move(*cb), counted);
        };
        hooks.on_grant = [this, line_addr, counted](const noc::BusResult&) {
          LineT l2 = level_.tags().find(line_addr);
          CDSIM_ASSERT_MSG(static_cast<bool>(l2) &&
                               (l2.payload().state == MesiState::kShared ||
                                l2.payload().state == MesiState::kOwned),
                           "upgrade granted for a non-upgradable line");
          if (!counted) level_.stats().write_hits.inc();
          l2.payload().upgrading = false;
          l2.payload().state = MesiState::kModified;
          level_.arm_on_entry(l2.payload().decay, MesiState::kModified);
          if (obs_) obs_->on_write_serialized(core_, line_addr, eq_.now());
        };
        hooks.on_done = [cb](const noc::BusResult& res) {
          (*cb)(res.done_at, true);
        };
        ic_.request(BusTxKind::kBusUpgr, line_addr, core_, /*bytes=*/0,
                     std::move(hooks));
        return;
      }
      default:
        CDSIM_UNREACHABLE("stationary states handled above");
    }
  }

  // Write miss: write-allocate via BusRdX.
  if (cache::MshrEntry* e = level_.mshr().find(line_addr)) {
    if (!counted) level_.note_miss(line_addr, /*is_write=*/true);
    // Merged into an outstanding (possibly read) fetch: re-enter after the
    // fill so E/S copies upgrade properly.
    level_.mshr().merge(
        *e, /*is_write=*/true,
        [this, line_addr, cb = std::move(on_done)](Cycle) mutable {
          do_write(line_addr, std::move(cb), /*counted=*/true);
        });
    return;
  }

  if (level_.mshr().full()) {
    retry([this, line_addr, cb = std::move(on_done), counted]() mutable {
      do_write(line_addr, std::move(cb), counted);
    });
    return;
  }

  if (!counted) level_.note_miss(line_addr, /*is_write=*/true);
  cache::MshrEntry& e =
      level_.mshr().allocate(line_addr, /*is_write=*/true, eq_.now());
  level_.mshr().merge(
      e, /*is_write=*/true,
      [this, line_addr, cb = std::move(on_done)](Cycle fill_done) {
        LineT l2 = level_.tags().find(line_addr);
        const bool may_cache =
            static_cast<bool>(l2) && coherence::holds_data(l2.payload().state);
        cb(fill_done, may_cache);
      });
  issue_fetch(line_addr, /*is_write=*/true);
}

// ---------------------------------------------------------------------------
// Fetch / install / evict
// ---------------------------------------------------------------------------

void L2Cache::issue_fetch(Addr line_addr, bool is_write) {
  const Cycle miss_begin = eq_.now();  // MSHR allocated this cycle
  noc::RequestHooks hooks;
  hooks.on_grant = [this, line_addr, is_write](const noc::BusResult& res) {
    install_at_grant(line_addr, is_write, res);
  };
  hooks.on_done = [this, line_addr,
                   miss_begin](const noc::BusResult& res) {
    if (LineT ln = level_.tags().find(line_addr)) {
      ln.payload().fetching = false;
    }
    level_.fills().inc();
    level_.mshr().complete(line_addr, res.done_at);
    if (trace_ != nullptr) {
      trace_->span(trace_track_, "miss", miss_begin, res.done_at, "line",
                   line_addr);
    }
  };
  ic_.request(is_write ? BusTxKind::kBusRdX : BusTxKind::kBusRd, line_addr,
               core_, cfg_.line_bytes, std::move(hooks));
}

void L2Cache::install_at_grant(Addr line_addr, bool is_write,
                               const noc::BusResult& res) {
  CDSIM_ASSERT_MSG(!level_.tags().find(line_addr),
                   "fill granted for an already-present line");
  // Never evict a way whose own fill is still in flight.
  const LineT slot = level_.tags().pick_victim_if(
      line_addr, [](LineT ln) { return !ln.payload().fetching; });
  if (!slot) {
    // Pathological: every way of the set is mid-fill. Serve the requester
    // without caching (the MSHR completion path handles the absent tag).
    return;
  }
  if (slot.valid()) evict(slot);

  Payload p;
  p.state = coherence::fill_state(is_write, res.shared);
  p.fetching = true;
  p.decay.last_touch = eq_.now();
  level_.arm_on_entry(p.decay, p.state);
  const LineT installed =
      level_.tags().install(slot, line_addr, std::move(p));
  level_.wheel_register(installed);
  level_.power_on();
  level_.clear_attribution(line_addr);
  if (obs_) {
    // The fill's data source (owner flush vs memory) was decided by the
    // snoop broadcast that just resolved; a write-allocate fill also
    // serializes its store here (the line is Modified from this grant).
    obs_->on_fill(core_, line_addr, eq_.now(), res.supplied_by_cache,
                  is_write);
    if (is_write) obs_->on_write_serialized(core_, line_addr, eq_.now());
  }
}

void L2Cache::evict(LineT victim) {
  CDSIM_ASSERT(victim.valid());
  const Addr vline = victim.tag();
  // Inclusion: the L1 copy (if any) must go.
  upper_->back_invalidate(vline);
  level_.stats().evictions.inc();

  if (coherence::is_dirty(victim.payload().state)) {
    // Dirty data must reach memory. Any pending TD turn-off write-back for
    // this line is superseded by the eviction write-back.
    cancel_td_wb(victim.payload());
    level_.stats().writebacks.inc();
    if (trace_ != nullptr) {
      trace_->instant(trace_track_, "wb.evict", eq_.now(), "line", vline);
    }
    if (obs_) obs_->on_writeback_initiated(core_, vline, eq_.now());
    ic_.request(BusTxKind::kWriteBack, vline, core_, cfg_.line_bytes,
                 noc::Interconnect::Completion{});
    line_off(victim);
  } else {
    // Clean eviction: no data traffic. The directory still learns about it
    // (PutS/PutE) so its sharer bitmap stays exact; the bus ignores it.
    line_off(victim);
    ic_.note_clean_drop(core_, vline);
  }
}

// ---------------------------------------------------------------------------
// Snooping
// ---------------------------------------------------------------------------

noc::SnoopReply L2Cache::snoop(coherence::BusTxKind kind, Addr line_addr,
                               CoreId /*requester*/) {
  const prof::ScopedPhase prof_scope(prof::Phase::kCoherence);
  LineT ln = level_.tags().find(line_addr);
  if (!ln) return {};

  Payload& p = ln.payload();
  const coherence::SnoopOutcome out =
      coherence::apply_snoop(cfg_.protocol, p.state, kind);
  noc::SnoopReply reply{out.had_line, out.supply_data, out.memory_update};

  if (out.cancel_turnoff_wb) cancel_td_wb(p);
  if (out.supply_data && obs_) {
    // Flush precedes the requester's on_grant install, so the verifier sees
    // the supplied data before the fill that consumes it.
    obs_->on_flush_supply(core_, line_addr, eq_.now(), out.memory_update);
  }

  if (out.invalidated) {
    upper_->back_invalidate(line_addr);
    level_.stats().coherence_invals.inc();
    line_off(ln);
  } else if (out.next != p.state) {
    // Downgrade (e.g. M->S on a remote BusRd, or MOESI's M->O): a
    // transition into S arms Selective Decay and restarts the countdown;
    // entering O disarms it (dirty turn-offs are what it avoids).
    if (out.next == MesiState::kOwned) level_.stats().owned_downgrades.inc();
    p.state = out.next;
    level_.arm_on_entry(p.decay, out.next);
    p.decay.last_touch = eq_.now();
    level_.wheel_register(ln);
  }
  return reply;
}

// ---------------------------------------------------------------------------
// Decay turn-off (the paper's Figure 2 choreography)
// ---------------------------------------------------------------------------

void L2Cache::decay_sweep(Cycle now) {
  const prof::ScopedPhase prof_scope(prof::Phase::kDecaySweep);
  std::uint64_t initiated = 0;
  // The engine yields the genuinely expired lines in line-index order —
  // the same order the old full-array sweep visited lines — so the
  // turn-off events (and the bus traffic they cause) are scheduled in an
  // identical order. What remains here is the L2's legality gates and the
  // Figure-2 choreography.
  level_.for_each_expired(now, [&](LineT ln, std::size_t line_index) {
    Payload& p = ln.payload();
    if (!coherence::is_stationary(p.state) || p.fetching || p.upgrading ||
        // Table I gate: a line with a pending write in the L1 write buffer
        // must not be switched off.
        upper_->pending_write(ln.tag())) {
      level_.defer_to_next_tick(ln, line_index, now);
      return;
    }

    const Addr line_addr = ln.tag();
    switch (coherence::classify_turnoff(cfg_.protocol, p.state)) {
      case coherence::MoesiTurnOffClass::kCleanTurnOff:
        p.state = MesiState::kTransientClean;
        ++initiated;
        eq_.schedule_in(cfg_.l1_inval_latency,
                        [this, line_addr] { turn_off_clean(line_addr); });
        break;
      case coherence::MoesiTurnOffClass::kDirtyTurnOff: {
        p.state = MesiState::kTransientDirty;
        p.td_wb_token = std::make_shared<bool>(true);
        ++initiated;
        eq_.schedule_in(cfg_.l1_inval_latency,
                        [this, line_addr] { turn_off_dirty(line_addr); });
        break;
      }
      case coherence::MoesiTurnOffClass::kOwnedTurnOff: {
        // §III: "considering the Owned state of the MOESI, other copies
        // must be invalidated before a line is turned off."
        p.state = MesiState::kTransientDirty;
        p.td_wb_token = std::make_shared<bool>(true);
        ++initiated;
        eq_.schedule_in(cfg_.l1_inval_latency,
                        [this, line_addr] { turn_off_owned(line_addr); });
        break;
      }
      case coherence::MoesiTurnOffClass::kIgnore:
        break;  // unreachable for stationary states; defensive
    }
  });
  if (trace_ != nullptr && initiated > 0) {
    trace_->instant(trace_track_, "decay.sweep", now, "turnoffs", initiated);
  }
}

void L2Cache::turn_off_clean(Addr line_addr) {
  LineT ln = level_.tags().find(line_addr);
  // A snoop or eviction may have finished the line off already.
  if (!ln || ln.payload().state != MesiState::kTransientClean) return;
  upper_->back_invalidate(line_addr);
  level_.stats().decay_turnoffs.inc();
  level_.mark_decayed(line_addr);
  line_off(ln);
  if (trace_ != nullptr) {
    trace_->instant(trace_track_, "toff.clean", eq_.now(), "line", line_addr);
  }
  // §III turn-off legality, directory form: a decayed line may be dropped
  // without data traffic exactly because it is clean — tell the home so
  // the sharer bitmap (and the PutE/PutS legality check) stays exact.
  ic_.note_clean_drop(core_, line_addr);
}

void L2Cache::turn_off_dirty(Addr line_addr) {
  LineT ln = level_.tags().find(line_addr);
  if (!ln || ln.payload().state != MesiState::kTransientDirty) return;
  upper_->back_invalidate(line_addr);
  issue_turnoff_writeback(line_addr);
}

void L2Cache::turn_off_owned(Addr line_addr) {
  LineT ln = level_.tags().find(line_addr);
  // A snoop or eviction may have finished the line off already.
  if (!ln || ln.payload().state != MesiState::kTransientDirty) return;
  upper_->back_invalidate(line_addr);

  // Ownership-revocation broadcast: invalidate the remaining S copies
  // system-wide, then flush like a dirty turn-off. The validator drops the
  // broadcast when a snoop already finished this line off (the snoop's
  // flush-and-cancel also cleared the token).
  std::shared_ptr<bool> token = ln.payload().td_wb_token;
  CDSIM_ASSERT(token != nullptr);
  noc::RequestHooks hooks;
  hooks.validator = [token] { return *token; };
  hooks.on_done = [this, line_addr](const noc::BusResult&) {
    issue_turnoff_writeback(line_addr);
  };
  ic_.request(BusTxKind::kBusUpgr, line_addr, core_, /*bytes=*/0,
               std::move(hooks));
}

void L2Cache::issue_turnoff_writeback(Addr line_addr) {
  LineT ln = level_.tags().find(line_addr);
  if (!ln || ln.payload().state != MesiState::kTransientDirty) {
    return;  // finished via snoop/eviction while this step was in flight
  }

  if (cfg_.test_lose_decay_writeback) {
    // Injected fault (see L2Config): drop the dirty data on the floor.
    // Timing-wise this looks like a clean turn-off; memory keeps its stale
    // copy, which is exactly the wrong-data bug the differential oracle
    // must catch (and the internal invariants cannot). The buggy
    // controller also reports the drop as clean — under the directory
    // that releases ownership, so the stale refetch (the divergence)
    // happens instead of a home deferral waiting forever for the
    // write-back this fault just swallowed.
    level_.stats().decay_turnoffs.inc();
    level_.mark_decayed(line_addr);
    line_off(ln);
    ic_.note_clean_drop(core_, line_addr);
    return;
  }

  // Flush on the bus (Grant/Flush edge); the validator lets a snoop that
  // already moved the data cancel this write-back.
  std::shared_ptr<bool> token = ln.payload().td_wb_token;
  CDSIM_ASSERT(token != nullptr);
  if (obs_) obs_->on_writeback_initiated(core_, line_addr, eq_.now());
  noc::RequestHooks hooks;
  hooks.validator = [token] { return *token; };
  hooks.on_done = [this, line_addr](const noc::BusResult&) {
    LineT l2 = level_.tags().find(line_addr);
    if (!l2 || l2.payload().state != MesiState::kTransientDirty) {
      return;  // finished via snoop/eviction while the flush was queued
    }
    level_.stats().decay_turnoffs.inc();
    level_.stats().writebacks.inc();
    level_.mark_decayed(line_addr);
    line_off(l2);
    if (trace_ != nullptr) {
      trace_->instant(trace_track_, "toff.dirty", eq_.now(), "line",
                      line_addr);
    }
    // Dirty turn-off complete: the flushed copy is off. The directory kept
    // the TD line tracked across the write-back grant (it stays snoopable
    // until this instant) and releases it here; the bus ignores the note.
    ic_.note_clean_drop(core_, line_addr);
  };
  ic_.request(BusTxKind::kWriteBack, line_addr, core_, cfg_.line_bytes,
               std::move(hooks));
}

}  // namespace cdsim::sim
