#include "cdsim/thermal/rc_model.hpp"

namespace cdsim::thermal {

Floorplan make_cmp_floorplan(const ThermalConfig& cfg, std::size_t num_cores,
                             double l2_slice_mb) {
  CDSIM_ASSERT(num_cores >= 1);
  CDSIM_ASSERT(l2_slice_mb > 0.0);
  std::vector<BlockParams> blocks;
  blocks.reserve(2 * num_cores + 1);

  // Cores: small, hot blocks — low capacity, moderate resistance.
  for (std::size_t c = 0; c < num_cores; ++c) {
    blocks.push_back(BlockParams{"core" + std::to_string(c),
                                 /*r_to_ambient=*/1.2,
                                 /*heat_capacity=*/2.0e-3});
  }
  // L2 slices: area (and so both R and C) scale with capacity. Larger
  // slices spread heat better (lower R) but also hold more of it.
  for (std::size_t c = 0; c < num_cores; ++c) {
    const double area_scale = l2_slice_mb;  // relative to a 1 MB slice
    blocks.push_back(BlockParams{"l2_" + std::to_string(c),
                                 /*r_to_ambient=*/2.0 / area_scale,
                                 /*heat_capacity=*/3.0e-3 * area_scale});
  }
  blocks.push_back(BlockParams{"bus", /*r_to_ambient=*/3.0,
                               /*heat_capacity=*/1.0e-3});

  std::vector<std::pair<std::size_t, std::size_t>> couplings;
  couplings.reserve(num_cores);
  for (std::size_t c = 0; c < num_cores; ++c) {
    couplings.emplace_back(c, num_cores + c);  // core <-> its L2 slice
  }

  return Floorplan{RcThermalModel(cfg, std::move(blocks), std::move(couplings)),
                   num_cores};
}

}  // namespace cdsim::thermal
