// SnoopBus is header-only; this TU anchors the archive and compiles the
// header under the project warning set.
#include "cdsim/bus/snoop_bus.hpp"

namespace cdsim::bus {
static_assert(sizeof(BusConfig) > 0);
}  // namespace cdsim::bus
