#include "cdsim/common/version.hpp"

namespace cdsim {

const char* version() noexcept { return "1.0.0"; }

}  // namespace cdsim
