#include "cdsim/noc/mesh.hpp"

#include <utility>

namespace cdsim::noc {

MeshDims mesh_dims(std::uint32_t tiles) noexcept {
  CDSIM_ASSERT(is_pow2(tiles));
  const unsigned bits = log2_pow2(tiles);
  // Split the exponent as evenly as possible; the wider side takes the
  // odd bit (32 -> 8x4, 8 -> 4x2, 2 -> 2x1).
  MeshDims d;
  d.height = 1u << (bits / 2);
  d.width = tiles / d.height;
  return d;
}

MeshNoc::MeshNoc(EventQueue& eq, const NocConfig& cfg, std::uint32_t width,
                 std::uint32_t height)
    : eq_(eq), cfg_(cfg), width_(width), height_(height) {
  CDSIM_ASSERT(width_ >= 1 && height_ >= 1);
  CDSIM_ASSERT(cfg_.link_credits >= 1);
  CDSIM_ASSERT(cfg_.flit_bytes >= 1);
  links_.resize(static_cast<std::size_t>(num_tiles()) * kDirs);
  // Wait-queue sizing: a packet waiting on link L occupies an input buffer
  // of L's source router, and that router has at most kDirs inbound links
  // of link_credits buffers each — so transit waiters per link are bounded
  // by kDirs * link_credits. Injection waiters (packets still at their
  // source, holding no buffer) sit on top of that bound, so the ring keeps
  // its amortized growth path; the assert pins the credit-derived floor.
  const std::size_t transit_bound =
      static_cast<std::size_t>(kDirs) * cfg_.link_credits;
  std::size_t wired = 0;
  for (std::uint32_t t = 0; t < num_tiles(); ++t) {
    const std::uint32_t x = tile_x(t), y = tile_y(t);
    auto wire = [&](std::uint32_t dir, std::uint32_t to) {
      Link& l = links_[t * kDirs + dir];
      l.to = to;
      l.credits = cfg_.link_credits;
      l.waitq = FifoRing<std::uint32_t>(transit_bound);
      CDSIM_ASSERT(l.waitq.capacity() >= transit_bound);
      ++wired;
    };
    if (x + 1 < width_) wire(kEast, t + 1);
    if (x > 0) wire(kWest, t - 1);
    if (y > 0) wire(kNorth, t - width_);
    if (y + 1 < height_) wire(kSouth, t + width_);
  }
  // Slot-pool sizing: every packet occupying a mesh buffer holds a slot
  // (wired links x credits), plus one injection in flight per tile. Bursts
  // beyond that grow the pool to its high-water mark once; steady state
  // then never allocates (same policy as the EventQueue slot pool).
  const std::size_t slot_budget = wired * cfg_.link_credits + num_tiles();
  slots_.reserve(slot_budget);
  free_slots_.reserve(slot_budget);
}

std::uint32_t MeshNoc::hops(std::uint32_t src,
                            std::uint32_t dst) const noexcept {
  const std::int64_t dx = static_cast<std::int64_t>(tile_x(dst)) - tile_x(src);
  const std::int64_t dy = static_cast<std::int64_t>(tile_y(dst)) - tile_y(src);
  return static_cast<std::uint32_t>((dx < 0 ? -dx : dx) +
                                    (dy < 0 ? -dy : dy));
}

std::uint32_t MeshNoc::xy_dir(std::uint32_t at,
                              std::uint32_t dst) const noexcept {
  // Dimension order: resolve X fully before touching Y.
  if (tile_x(dst) > tile_x(at)) return kEast;
  if (tile_x(dst) < tile_x(at)) return kWest;
  return tile_y(dst) > tile_y(at) ? kSouth : kNorth;
}

std::uint32_t MeshNoc::acquire_slot(Packet&& p) {
  if (free_slots_.empty()) {
    slots_.push_back(std::move(p));
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  slots_[slot] = std::move(p);
  return slot;
}

void MeshNoc::release_slot(std::uint32_t slot) {
  slots_[slot].on_delivered = nullptr;
  free_slots_.push_back(slot);
}

void MeshNoc::send(std::uint32_t src, std::uint32_t dst,
                   std::uint32_t payload_bytes, Delivery on_delivered) {
  CDSIM_ASSERT(src < num_tiles() && dst < num_tiles());
  Packet p;
  p.dst = dst;
  p.flits = flits_for(payload_bytes);
  p.injected = eq_.now();
  p.on_delivered = std::move(on_delivered);
  ++packets_sent_;
  bytes_injected_ += payload_bytes;
  const std::uint32_t slot = acquire_slot(std::move(p));
  // Injection models the local router traversal; a same-tile message never
  // touches a link.
  eq_.schedule_in(cfg_.router_latency,
                  [this, slot, src] { advance(slot, src); });
}

void MeshNoc::advance(std::uint32_t slot, std::uint32_t tile) {
  Packet& p = slots_[slot];
  if (tile == p.dst) {
    ++packets_delivered_;
    latency_sum_ += eq_.now() - p.injected;
    const std::int32_t in = p.in_link;
    Delivery cb = std::move(p.on_delivered);
    release_slot(slot);
    // Consumption frees the input buffer; the ejection port always sinks,
    // which (with XY's acyclic channel dependencies) is what makes the
    // mesh deadlock-free.
    if (in != kNoLink) release_credit(static_cast<std::uint32_t>(in));
    if (cb) cb(eq_.now());
    return;
  }
  const std::uint32_t link = tile * kDirs + xy_dir(tile, p.dst);
  Link& l = links_[link];
  if (l.credits == 0) {
    l.waitq.push_back(slot);  // holds its current buffer: backpressure
    ++l.stats.stalls;
    return;
  }
  traverse(slot, link);
}

void MeshNoc::traverse(std::uint32_t slot, std::uint32_t link) {
  Packet& p = slots_[slot];
  Link& l = links_[link];
  CDSIM_ASSERT(l.credits > 0);
  --l.credits;

  // Wire serialization: one flit per cycle, back to back behind the
  // previous occupant.
  const Cycle start = eq_.now() > l.free_at ? eq_.now() : l.free_at;
  const Cycle ser = p.flits;
  l.free_at = start + ser;
  l.stats.busy_cycles += ser;
  ++l.stats.packets;
  l.stats.flits += p.flits;
  flit_hops_ += p.flits;

  // The packet departs this router: its previous input buffer frees now.
  const std::int32_t prev = p.in_link;
  p.in_link = static_cast<std::int32_t>(link);
  if (prev != kNoLink) release_credit(static_cast<std::uint32_t>(prev));

  const std::uint32_t to = l.to;
  const Cycle arrival = start + ser + cfg_.link_latency + cfg_.router_latency;
  eq_.schedule_at(arrival, [this, slot, to] { advance(slot, to); });
}

void MeshNoc::release_credit(std::uint32_t link) {
  Link& l = links_[link];
  ++l.credits;
  if (!l.waitq.empty()) {
    const std::uint32_t waiter = l.waitq.front();
    l.waitq.pop_front();
    traverse(waiter, link);
  }
}

double MeshNoc::max_link_utilization(Cycle now) const noexcept {
  double best = 0.0;
  for (const Link& l : links_) {
    const double u = safe_div(static_cast<double>(l.stats.busy_cycles),
                              static_cast<double>(now));
    if (u > best) best = u;
  }
  return best > 1.0 ? 1.0 : best;
}

std::uint64_t MeshNoc::total_stalls() const noexcept {
  std::uint64_t n = 0;
  for (const Link& l : links_) n += l.stats.stalls;
  return n;
}

}  // namespace cdsim::noc
