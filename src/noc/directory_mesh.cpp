#include "cdsim/noc/directory_mesh.hpp"

#include <bit>
#include <utility>

#include "cdsim/common/host_timer.hpp"

namespace cdsim::noc {

using coherence::BusTxKind;
using coherence::MesiState;

DirectoryMesh::DirectoryMesh(EventQueue& eq, const DirectoryMeshConfig& cfg,
                             mem::MemoryController& mem,
                             std::uint32_t num_cores)
    : eq_(eq),
      cfg_(cfg),
      mem_(mem),
      noc_(eq, cfg.noc, mesh_dims(num_cores).width,
           mesh_dims(num_cores).height),
      dir_(num_cores) {
  CDSIM_ASSERT(cfg_.mem_tile < noc_.num_tiles());
  CDSIM_ASSERT(cfg_.home_interleave_bytes >= 1);
  bank_free_.assign(noc_.num_tiles(), 0);
}

void DirectoryMesh::attach(Snooper* s) {
  CDSIM_ASSERT(s != nullptr);
  CDSIM_ASSERT_MSG(snoopers_.size() < noc_.num_tiles(),
                   "one agent per mesh tile");
  snoopers_.push_back(s);
}

std::uint32_t DirectoryMesh::alloc_tx(Tx&& tx) {
  if (tx_free_.empty()) {
    tx_pool_.push_back(std::move(tx));
    return static_cast<TxId>(tx_pool_.size() - 1);
  }
  const TxId id = tx_free_.back();
  tx_free_.pop_back();
  tx_pool_[id] = std::move(tx);
  return id;
}

void DirectoryMesh::free_tx(TxId id) {
  Tx& t = tx_pool_[id];
  t.hooks = RequestHooks{};  // drop hook captures now, not at slot reuse
  t.next = kNoTx;
  tx_free_.push_back(id);
}

void DirectoryMesh::request(BusTxKind kind, Addr line_addr, CoreId requester,
                            std::uint32_t bytes, RequestHooks hooks) {
  CDSIM_ASSERT(requester < snoopers_.size());
  const TxId id =
      alloc_tx(Tx{kind, line_addr, requester, bytes, std::move(hooks)});
  // A write-back's request packet carries the line; everything else is a
  // control message.
  const std::uint32_t payload =
      kind == BusTxKind::kWriteBack ? bytes : cfg_.ctrl_bytes;
  noc_.send(requester, home_tile(line_addr), payload,
            [this, id](Cycle) { home_arrive(id); });
}

void DirectoryMesh::attach_l3(MemorySideCache* l3) {
  l3_ = l3;
  if (l3_ == nullptr) return;
  // The bank's own dirty traffic (decay turn-offs, dirty victims) crosses
  // the mesh to the memory tile like any other data packet.
  l3_->connect_memory_port(
      [this](std::uint32_t bank, Addr line, std::uint32_t bytes) {
        noc_.send(bank, cfg_.mem_tile, bytes,
                  [this, bytes, line](Cycle c) { mem_write(c, bytes, line); });
      });
}

void DirectoryMesh::mem_write(Cycle at, std::uint32_t bytes, Addr line) {
  if (mem_.model() == mem::MemoryModel::kDram) {
    mem_.dram_write(at, bytes, line, {});
  } else {
    mem_.post_write(at, bytes);
  }
}

void DirectoryMesh::note_clean_drop(CoreId core, Addr line_addr) {
  // Bookkeeping is applied at the drop instant (shrinking the bitmap early
  // only narrows future snoop sets — a directed snoop to a dropped copy
  // would have been a no-op anyway); the PutS/PutE control message still
  // crosses the mesh for timing and energy.
  dir_.note_clean_drop(core, line_addr);
  noc_.send(core, home_tile(line_addr), cfg_.ctrl_bytes, {});
}

void DirectoryMesh::defer_append(DefList& q, TxId id) {
  tx_pool_[id].next = kNoTx;
  if (q.tail == kNoTx) {
    q.head = q.tail = id;
  } else {
    tx_pool_[q.tail].next = id;
    q.tail = id;
  }
}

void DirectoryMesh::home_arrive(TxId id) {
  // Preserve per-line arrival order past a parked queue: anything that is
  // not the unblocking write-back joins the queue's tail.
  Tx& t = tx_pool_[id];
  if (t.kind != BusTxKind::kWriteBack) {
    const auto it = deferred_.find(t.line);
    if (it != deferred_.end()) {
      dir_.stats().deferrals.inc();
      defer_append(it->second, id);
      return;
    }
  }
  const std::uint32_t home = home_tile(t.line);
  const Cycle earliest = eq_.now() + cfg_.directory_latency;
  const Cycle grant = earliest > bank_free_[home] ? earliest : bank_free_[home];
  bank_free_[home] = grant + cfg_.bank_occupancy;
  eq_.schedule_at(grant, [this, id] { process(id); });
}

void DirectoryMesh::finish_tx(TxId id, BusResult res, Cycle at) {
  auto cb = std::move(tx_pool_[id].hooks.on_done);
  free_tx(id);  // the slot is reusable before the hook reenters request()
  if (cb) {
    res.done_at = at;
    cb(res);
  }
}

void DirectoryMesh::wb_finish(TxId id, BusResult res, Cycle at) {
  // Only schedule the completion event when a hook will observe it — the
  // event-count metrics are pinned, and the pre-pool code created no event
  // for a hook-less write-back either.
  if (!tx_pool_[id].hooks.on_done) {
    free_tx(id);
    return;
  }
  res.done_at = at;
  eq_.schedule_at(at, [this, id, res] { finish_tx(id, res, res.done_at); });
}

void DirectoryMesh::process(TxId id) {
  const prof::ScopedPhase prof_scope(prof::Phase::kFabric);
  const Cycle granted = eq_.now();
  // Stable across reentrancy: tx_pool_ is a deque, so snoops and hooks
  // below may alloc_tx() without moving this record.
  Tx& tx = tx_pool_[id];
  const Addr line = tx.line;
  const BusTxKind kind = tx.kind;

  // Home-bank grant span: the window this transaction occupies its
  // serialization point (matches the bank_occupancy reserved at arrival).
  if (trace_ != nullptr) {
    trace_->span(trace_track_, coherence::to_string(kind).data(), granted,
                 granted + cfg_.bank_occupancy, "line", line);
  }

  // A cancelled transaction vanishes before its snoop phase: no snoops, no
  // traffic, no memory write — identical to the bus's validator semantics.
  if (tx.hooks.validator && !tx.hooks.validator()) {
    cancelled_.inc();
    if (obs_ && kind == BusTxKind::kWriteBack) {
      obs_->on_writeback_resolved(tx.requester, line, granted,
                                  /*cancelled=*/true);
    }
    // Move the fallback hook out before releasing the slot: on_cancel
    // reenters request() (e.g. a dropped BusUpgr reissued as BusRdX), which
    // may immediately reuse this very id.
    auto on_cancel = std::move(tx.hooks.on_cancel);
    free_tx(id);
    if (on_cancel) on_cancel();
    if (kind == BusTxKind::kWriteBack) wake_deferred(line);
    return;
  }

  // Late-write-back deferral: the recorded owner no longer holds data, so
  // its dirty write-back is still crossing the fabric and memory is stale.
  // Park the fill behind it (see the file comment in the header).
  if (kind == BusTxKind::kBusRd || kind == BusTxKind::kBusRdX) {
    const coherence::DirectoryEntry* e = dir_.find(line);
    if (e != nullptr && e->owner != kNoCore) {
      const bool owner_has_data =
          e->owner != tx.requester &&
          coherence::holds_data(snoopers_[e->owner]->probe(line));
      if (!owner_has_data) {
        dir_.stats().deferrals.inc();
        defer_append(deferred_[line], id);
        return;
      }
    }
  }

  tx_count_[static_cast<std::size_t>(kind)].inc();

  BusResult res;
  res.granted_at = granted;
  res.done_at = granted;  // provisional; the data legs set the real value

  bool flush_mem = false;
  CoreId supplier = kNoCore;
  std::uint64_t targets = 0;

  if (kind == BusTxKind::kWriteBack) {
    // A dirty *turn-off* write-back (requester still holds the line in TD)
    // must not release tracking yet: the copy stays snoopable until the
    // power-off completes, and the L2 reports that death through
    // note_clean_drop. Eviction write-backs (the copy died at evict time)
    // release here.
    if (snoopers_[tx.requester]->probe(line) ==
        MesiState::kTransientDirty) {
      dir_.stats().owner_writebacks.inc();
    } else {
      dir_.writeback_granted(tx.requester, line);
    }
    if (obs_) {
      obs_->on_writeback_resolved(tx.requester, line, granted,
                                  /*cancelled=*/false,
                                  /*to_l3=*/l3_ != nullptr);
    }
  } else {
    coherence::DirectoryEntry& e = dir_.lookup(line);
    targets = dir_.snoop_targets(e, tx.requester);

    // A BusUpgr issued while the requester holds the line in TD is the
    // §III Owned-turn-off invalidation round — served here as a recall
    // directed at exactly the tracked sharers, not a broadcast.
    if (kind == BusTxKind::kBusUpgr &&
        snoopers_[tx.requester]->probe(line) ==
            MesiState::kTransientDirty) {
      dir_.stats().recalls.inc();
    }

    // Directed snoops, atomic at this grant (the bus's address phase,
    // narrowed to the tracked holders).
    for (CoreId t = 0; t < static_cast<CoreId>(snoopers_.size()); ++t) {
      if (((targets >> t) & 1u) == 0) continue;
      dir_.stats().directed_snoops.inc();
      const SnoopReply r = snoopers_[t]->snoop(kind, line, tx.requester);
      res.shared = res.shared || r.had_line;
      if (r.supplied_data) {
        CDSIM_ASSERT_MSG(supplier == kNoCore, "two suppliers for one line");
        res.supplied_by_cache = true;
        supplier = t;
      }
      flush_mem = flush_mem || r.memory_update;
    }
  }

  // Install/commit at the grant — the same atomic contract as the bus.
  if (tx.hooks.on_grant) tx.hooks.on_grant(res);

  // Bitmap refresh: probe every involved cache, including the requester's
  // just-installed copy. Write-backs change nothing beyond
  // writeback_granted (the requester's TD copy lives until on_done).
  if (kind != BusTxKind::kWriteBack) {
    coherence::DirectoryEntry& e = dir_.lookup(line);
    const std::uint64_t involved =
        targets | (std::uint64_t{1} << tx.requester);
    for (CoreId t = 0; t < static_cast<CoreId>(snoopers_.size()); ++t) {
      if (((involved >> t) & 1u) == 0) continue;
      dir_.record_probe(e, t, snoopers_[t]->probe(line));
    }
    CDSIM_ASSERT_MSG(e.owner == kNoCore || e.tracked(e.owner),
                     "directory owner must be a tracked sharer");
    dir_.drop_if_uncached(line);
  }

  data_legs(id, res, targets, flush_mem, supplier);
  if (kind == BusTxKind::kWriteBack) wake_deferred(line);
}

void DirectoryMesh::data_legs(TxId id, BusResult res, std::uint64_t targets,
                              bool flush_mem, CoreId supplier) {
  Tx& tx = tx_pool_[id];
  const std::uint32_t req_tile = tx.requester;
  const std::uint32_t home = home_tile(tx.line);

  switch (tx.kind) {
    case BusTxKind::kBusRd:
    case BusTxKind::kBusRdX: {
      if (res.supplied_by_cache) {
        CDSIM_ASSERT(supplier != kNoCore);
        if (flush_mem) {
          // The flush ends ownership (MESI always; MOESI for RdX): the
          // dirty line also travels to the memory tile, posted on arrival.
          // Any L3 copy predates this flush and must not serve again.
          if (l3_ != nullptr) l3_->invalidate(home, tx.line);
          const std::uint32_t bytes = tx.bytes;
          noc_.send(supplier, cfg_.mem_tile, bytes,
                    [this, bytes, line = tx.line](Cycle c) {
                      mem_write(c, bytes, line);
                    });
        }
        // Forward home -> owner, then the line owner -> requester.
        noc_.send(home, supplier, cfg_.ctrl_bytes,
                  [this, id, res, supplier, req_tile](Cycle) {
                    noc_.send(supplier, req_tile, tx_pool_[id].bytes,
                              [this, id, res](Cycle arr) {
                                finish_tx(id, res, arr);
                              });
                  });
      } else if (l3_ != nullptr && l3_->lookup_for_fill(home, tx.line)) {
        // Three-level: the home's L3 bank holds the line. The bank is at
        // the serialization point, so the data leaves after the bank's
        // access latency — no off-chip traffic at all.
        const Cycle ready = eq_.now() + l3_->access_latency();
        eq_.schedule_at(ready, [this, id, res, req_tile, home] {
          noc_.send(home, req_tile, tx_pool_[id].bytes,
                    [this, id, res](Cycle arr) { finish_tx(id, res, arr); });
        });
      } else {
        // home -> memory tile (read request), memory access, then the
        // line memory tile -> requester. With L3 banks attached, the
        // delivered line is also written into the home bank (off the
        // critical path — the bank fill does not delay the requester).
        noc_.send(home, cfg_.mem_tile, cfg_.ctrl_bytes,
                  [this, id, res, req_tile, home](Cycle arr) {
                    // The delivery leg runs when memory has the line: flat
                    // computes the cycle synchronously, kDram resolves it
                    // through the controller's completion callback.
                    auto deliver = [this, id, res, req_tile,
                                    home](Cycle /*ready*/) {
                      if (l3_ != nullptr) {
                        l3_->install_from_memory(home, tx_pool_[id].line);
                      }
                      noc_.send(cfg_.mem_tile, req_tile, tx_pool_[id].bytes,
                                [this, id, res](Cycle a2) {
                                  finish_tx(id, res, a2);
                                });
                    };
                    if (mem_.model() == mem::MemoryModel::kDram) {
                      mem_.dram_read(arr, tx_pool_[id].bytes,
                                     tx_pool_[id].line, std::move(deliver));
                    } else {
                      const Cycle ready =
                          mem_.schedule_read(arr, tx_pool_[id].bytes);
                      eq_.schedule_at(
                          ready, [deliver = std::move(deliver),
                                  ready]() mutable { deliver(ready); });
                    }
                  });
      }
      break;
    }

    case BusTxKind::kBusUpgr: {
      // The invalidations were applied at the grant; the packets model the
      // inval/ack round trips, and the requester's ack closes the
      // transaction once every sharer answered. The fan-in counter lives
      // in the pooled record itself (Tx::remaining) — no shared_ptr.
      tx.remaining = static_cast<std::uint32_t>(std::popcount(targets));
      if (tx.remaining == 0) {
        noc_.send(home, req_tile, cfg_.ctrl_bytes,
                  [this, id, res](Cycle a) { finish_tx(id, res, a); });
        break;
      }
      for (CoreId t = 0; t < static_cast<CoreId>(snoopers_.size()); ++t) {
        if (((targets >> t) & 1u) == 0) continue;
        noc_.send(home, t, cfg_.ctrl_bytes,
                  [this, t, home, id, res, req_tile](Cycle) {
                    noc_.send(t, home, cfg_.ctrl_bytes,
                              [this, id, res, req_tile, home](Cycle) {
                                if (--tx_pool_[id].remaining != 0) return;
                                noc_.send(home, req_tile, cfg_.ctrl_bytes,
                                          [this, id, res](Cycle a) {
                                            finish_tx(id, res, a);
                                          });
                              });
                  });
      }
      break;
    }

    case BusTxKind::kWriteBack: {
      // The data reached the home with the request. Three-level: the home
      // bank absorbs it (dirty) and the channel sees nothing; two-level:
      // forward it to memory.
      const std::uint32_t bytes = tx.bytes;
      const Cycle local_done = res.granted_at + cfg_.directory_latency;
      if (l3_ == nullptr && !mem_.config().posted_writes) {
        // Non-posted: the evicting cache's completion waits for the
        // memory write to land, not just the directory's ack. (An L3
        // absorption completes locally — memory was never involved.)
        noc_.send(home, cfg_.mem_tile, bytes,
                  [this, id, res, local_done](Cycle c) {
                    if (mem_.model() == mem::MemoryModel::kDram) {
                      mem_.dram_write(
                          c, tx_pool_[id].bytes, tx_pool_[id].line,
                          [this, id, res, local_done](Cycle t) {
                            wb_finish(id, res,
                                      t > local_done ? t : local_done);
                          });
                    } else {
                      const Cycle wdone =
                          mem_.post_write(c, tx_pool_[id].bytes);
                      wb_finish(id, res,
                                wdone > local_done ? wdone : local_done);
                    }
                  });
        break;
      }
      if (l3_ != nullptr) {
        l3_->absorb_writeback(home, tx.line);
      } else {
        noc_.send(home, cfg_.mem_tile, bytes,
                  [this, bytes, line = tx.line](Cycle c) {
                    mem_write(c, bytes, line);
                  });
      }
      wb_finish(id, res, local_done);
      break;
    }
  }
}

void DirectoryMesh::wake_deferred(Addr line) {
  const auto it = deferred_.find(line);
  if (it == deferred_.end()) return;
  TxId cur = it->second.head;
  deferred_.erase(it);
  const std::uint32_t home = home_tile(line);
  while (cur != kNoTx) {
    // Re-grant in FIFO order through the bank; a transaction may defer
    // again if yet another write-back is in flight by then.
    const TxId id = cur;
    cur = tx_pool_[id].next;
    tx_pool_[id].next = kNoTx;
    const Cycle earliest = eq_.now() + cfg_.bank_occupancy;
    const Cycle grant =
        earliest > bank_free_[home] ? earliest : bank_free_[home];
    bank_free_[home] = grant + cfg_.bank_occupancy;
    eq_.schedule_at(grant, [this, id] { process(id); });
  }
}

}  // namespace cdsim::noc
