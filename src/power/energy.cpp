// Anchor TU for cdsim_power; headers are otherwise header-only.
#include "cdsim/power/energy.hpp"
#include "cdsim/power/leakage.hpp"

namespace cdsim::power {
static_assert(kNumComponents == 16);
}  // namespace cdsim::power
