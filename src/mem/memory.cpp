// MemoryController is header-only; this TU forces it through the project
// warning set and anchors the cdsim_mem archive.
#include "cdsim/mem/memory.hpp"

namespace cdsim::mem {
static_assert(sizeof(MemoryConfig) > 0);
}  // namespace cdsim::mem
