// The banked-DRAM engine behind mem::MemoryController (model == kDram).
//
// Determinism: all scheduling state lives in std::deque / std::vector and
// every decision is a pure function of (cycle, queue order); completions go
// through the EventQueue, so two runs of the same trace produce identical
// service orders. Refresh is applied *lazily* — due refreshes are caught up
// whenever the scheduler looks at a channel — so an idle controller posts no
// events and unit tests that drain the queue terminate.
#include "cdsim/mem/memory.hpp"

#include <algorithm>
#include <string>

#include "cdsim/common/host_timer.hpp"

namespace cdsim::mem {

DramController::DramController(EventQueue& eq, const MemoryConfig& cfg)
    : eq_(eq), cfg_(cfg) {
  const DramConfig& d = cfg_.dram;
  CDSIM_ASSERT(d.channels >= 1);
  CDSIM_ASSERT(d.ranks_per_channel >= 1);
  CDSIM_ASSERT(d.banks_per_rank >= 1);
  CDSIM_ASSERT(d.interleave_bytes >= 1);
  CDSIM_ASSERT_MSG(d.row_bytes >= d.interleave_bytes,
                   "a row must hold at least one interleave unit");
  CDSIM_ASSERT(d.queue_depth >= 1);
  channels_.resize(d.channels);
  for (Channel& ch : channels_) {
    ch.banks.resize(static_cast<std::size_t>(d.ranks_per_channel) *
                    d.banks_per_rank);
  }
}

DramController::Decoded DramController::decode(Addr line) const noexcept {
  const DramConfig& d = cfg_.dram;
  // `line` is a line-aligned byte address (cache::Geometry::line_addr).
  const std::uint64_t unit = line / d.interleave_bytes;
  const std::uint64_t within = unit / d.channels;
  const std::uint64_t units_per_row = d.row_bytes / d.interleave_bytes;
  const std::uint64_t banks =
      static_cast<std::uint64_t>(d.ranks_per_channel) * d.banks_per_rank;
  Decoded out;
  out.channel = static_cast<std::uint32_t>(unit % d.channels);
  // Row-interleaved bank map: consecutive rows of one channel rotate over
  // the banks, while units inside a row stay together (streaming traffic
  // earns row hits, bank parallelism comes from row-sized strides).
  out.bank = static_cast<std::uint32_t>((within / units_per_row) % banks);
  out.row = within / (units_per_row * banks);
  return out;
}

Cycle DramController::transfer_cycles(std::uint32_t bytes) const noexcept {
  return (bytes + cfg_.bytes_per_cycle - 1) / cfg_.bytes_per_cycle;
}

void DramController::read(Cycle start, std::uint32_t bytes, Addr line,
                          MemCallback cb) {
  Request req;
  req.line = line;
  req.bytes = bytes;
  req.is_write = false;
  req.cb = std::move(cb);
  issue(start, std::move(req));
}

void DramController::write(Cycle start, std::uint32_t bytes, Addr line,
                           MemCallback cb) {
  Request req;
  req.line = line;
  req.bytes = bytes;
  req.is_write = true;
  req.cb = std::move(cb);
  issue(start, std::move(req));
}

void DramController::set_trace(obs::TraceRecorder* rec) {
  trace_ = rec;
  channel_tracks_.clear();
  bank_tracks_.clear();
  if (trace_ == nullptr) return;
  const std::size_t banks = channels_.front().banks.size();
  for (std::size_t ci = 0; ci < channels_.size(); ++ci) {
    channel_tracks_.push_back(trace_->track("dram.c" + std::to_string(ci)));
    for (std::size_t b = 0; b < banks; ++b) {
      bank_tracks_.push_back(trace_->track(
          "dram.c" + std::to_string(ci) + ".b" + std::to_string(b)));
    }
  }
}

void DramController::issue(Cycle start, Request req) {
  // Requests are handed over at their channel-arrival cycle; fabrics issue
  // them ahead of time (e.g. the bus at grant + address_phase).
  if (start > eq_.now()) {
    eq_.schedule_at(start, [this, req = std::move(req)]() mutable {
      arrive(std::move(req));
    });
  } else {
    arrive(std::move(req));
  }
}

void DramController::arrive(Request req) {
  const prof::ScopedPhase prof_scope(prof::Phase::kDram);
  const Decoded d = decode(req.line);
  Channel& ch = channels_[d.channel];
  if (!req.is_write) {
    // Write forwarding — the oracle-threading invariant: an older queued
    // write to the same line must satisfy this read, so it is served from
    // the queue (tCAS + transfer) and never visits the bank.
    const auto matches = [&req](const Request& q) {
      return q.is_write && q.line == req.line;
    };
    const bool fwd =
        std::any_of(ch.queue.begin(), ch.queue.end(), matches) ||
        std::any_of(ch.spill.begin(), ch.spill.end(), matches);
    if (fwd) {
      ++stats_.write_forwards;
      if (trace_ != nullptr) {
        trace_->instant(channel_tracks_[d.channel], "fwd", eq_.now(), "line",
                        req.line);
      }
      const Cycle done =
          eq_.now() + cfg_.dram.t_cas + transfer_cycles(req.bytes);
      if (req.cb) {
        eq_.schedule_at(done, [cb = std::move(req.cb), done]() mutable {
          cb(done);
        });
      }
      return;
    }
  }
  if (ch.queue.size() < cfg_.dram.queue_depth) {
    ch.queue.push_back(std::move(req));
  } else {
    ch.spill.push_back(std::move(req));
  }
  pump(d.channel);
}

void DramController::apply_refresh(std::size_t ci, Cycle now) {
  Channel& ch = channels_[ci];
  const DramConfig& d = cfg_.dram;
  if (d.t_refi == 0) return;
  const std::uint64_t due = now / d.t_refi;
  if (due <= ch.refreshes_applied) return;
  // Catch up all elapsed refresh intervals at once: each one closes every
  // open row and holds the banks for tRFC past its nominal tick. Only the
  // latest tick's window can still bind (earlier ones ended in the past).
  const Cycle busy_until = due * d.t_refi + d.t_rfc;
  for (Bank& b : ch.banks) {
    b.open_row = -1;
    b.ready = std::max(b.ready, busy_until);
  }
  if (trace_ != nullptr) {
    trace_->instant(channel_tracks_[ci], "refresh", now, "caught_up",
                    due - ch.refreshes_applied);
  }
  stats_.refreshes += due - ch.refreshes_applied;
  ch.refreshes_applied = due;
}

void DramController::pump(std::size_t ci) {
  const prof::ScopedPhase prof_scope(prof::Phase::kDram);
  Channel& ch = channels_[ci];
  if (ch.busy) return;
  // Refill the scheduler window from the FIFO spill.
  while (ch.queue.size() < cfg_.dram.queue_depth && !ch.spill.empty()) {
    ch.queue.push_back(std::move(ch.spill.front()));
    ch.spill.pop_front();
  }
  if (ch.queue.empty()) return;
  const Cycle now = eq_.now();
  apply_refresh(ci, now);

  // FR-FCFS: oldest row-hit first, oldest overall otherwise — unless the
  // oldest has been bypassed starvation_limit times, which forces it.
  std::size_t pick = 0;
  if (ch.queue.front().bypassed < cfg_.dram.starvation_limit) {
    for (std::size_t i = 0; i < ch.queue.size(); ++i) {
      const Decoded d = decode(ch.queue[i].line);
      if (ch.banks[d.bank].open_row == static_cast<std::int64_t>(d.row)) {
        pick = i;
        break;
      }
    }
  }
  if (pick != 0) ++ch.queue.front().bypassed;

  Request req = std::move(ch.queue[pick]);
  ch.queue.erase(ch.queue.begin() +
                 static_cast<std::ptrdiff_t>(pick));
  const Decoded d = decode(req.line);
  Bank& bank = ch.banks[d.bank];
  const DramConfig& dc = cfg_.dram;

  const Cycle start = std::max(now, bank.ready);
  Cycle access = 0;
  const char* row_outcome = nullptr;
  if (bank.open_row == static_cast<std::int64_t>(d.row)) {
    access = dc.t_cas;
    ++stats_.row_hits;
    row_outcome = req.is_write ? "wr.hit" : "rd.hit";
  } else if (bank.open_row < 0) {
    access = dc.t_rcd + dc.t_cas;
    ++stats_.row_misses;
    ++stats_.activates;
    row_outcome = req.is_write ? "wr.miss" : "rd.miss";
  } else {
    access = dc.t_rp + dc.t_rcd + dc.t_cas;
    ++stats_.row_conflicts;
    ++stats_.precharges;
    ++stats_.activates;
    row_outcome = req.is_write ? "wr.conflict" : "rd.conflict";
  }
  bank.open_row = static_cast<std::int64_t>(d.row);

  const Cycle data_start = std::max(start + access, ch.data_free);
  const Cycle done = data_start + transfer_cycles(req.bytes);
  ch.data_free = done;
  bank.ready = done;

  if (trace_ != nullptr) {
    trace_->span(bank_tracks_[ci * ch.banks.size() + d.bank], row_outcome,
                 start, done, "row", d.row);
  }

  // One command in service per channel at a time; the completion event
  // reopens the scheduler. (Bank-level overlap is folded into the access
  // latency — see the class comment.)
  ch.busy = true;
  eq_.schedule_at(done, [this, ci, done, cb = std::move(req.cb)]() mutable {
    channels_[ci].busy = false;
    if (cb) cb(done);
    pump(ci);
  });
}

}  // namespace cdsim::mem
