// Compile-time checks for the decay-arming rules of §IV.
#include "cdsim/decay/sweeper.hpp"
#include "cdsim/decay/technique.hpp"

namespace cdsim::decay {
namespace {

using coherence::MesiState;

// Full Decay arms everywhere a line holds data.
static_assert(arms_on_entry(Technique::kDecay, MesiState::kModified));
static_assert(arms_on_entry(Technique::kDecay, MesiState::kShared));
static_assert(arms_on_entry(Technique::kDecay, MesiState::kExclusive));
static_assert(!arms_on_entry(Technique::kDecay, MesiState::kInvalid));

// Selective Decay arms only on transitions into S/E, never into M.
static_assert(arms_on_entry(Technique::kSelectiveDecay, MesiState::kShared));
static_assert(arms_on_entry(Technique::kSelectiveDecay, MesiState::kExclusive));
static_assert(!arms_on_entry(Technique::kSelectiveDecay, MesiState::kModified));

// Protocol / baseline never decay.
static_assert(!arms_on_entry(Technique::kProtocol, MesiState::kShared));
static_assert(!arms_on_entry(Technique::kBaseline, MesiState::kModified));
static_assert(!uses_decay(Technique::kProtocol));
static_assert(gates_invalid_lines(Technique::kProtocol));
static_assert(!gates_invalid_lines(Technique::kBaseline));

}  // namespace
}  // namespace cdsim::decay
