// Compile-time checks for the decay-arming rules of §IV.
#include "cdsim/decay/sweeper.hpp"
#include "cdsim/decay/technique.hpp"

namespace cdsim::decay {
namespace {

using coherence::MesiState;

// Full Decay arms everywhere a line holds data.
static_assert(arms_on_entry(Technique::kDecay, MesiState::kModified));
static_assert(arms_on_entry(Technique::kDecay, MesiState::kShared));
static_assert(arms_on_entry(Technique::kDecay, MesiState::kExclusive));
static_assert(!arms_on_entry(Technique::kDecay, MesiState::kInvalid));

// Selective Decay arms only on transitions into S/E, never into a dirty
// state (M, or MOESI's O — an Owned turn-off costs an invalidation
// broadcast on top of the write-back).
static_assert(arms_on_entry(Technique::kSelectiveDecay, MesiState::kShared));
static_assert(arms_on_entry(Technique::kSelectiveDecay, MesiState::kExclusive));
static_assert(!arms_on_entry(Technique::kSelectiveDecay, MesiState::kModified));
static_assert(!arms_on_entry(Technique::kSelectiveDecay, MesiState::kOwned));
static_assert(arms_on_entry(Technique::kDecay, MesiState::kOwned));

// Protocol / baseline never decay.
static_assert(!arms_on_entry(Technique::kProtocol, MesiState::kShared));
static_assert(!arms_on_entry(Technique::kBaseline, MesiState::kModified));
static_assert(!uses_decay(Technique::kProtocol));
static_assert(gates_invalid_lines(Technique::kProtocol));
static_assert(!gates_invalid_lines(Technique::kBaseline));

// Expiry-wheel registration math: first_expiry_tick is the smallest tick
// multiple at which expired() holds — the wheel and a full per-tick sweep
// therefore switch a line off at the identical tick.
namespace {
constexpr DecayConfig kD{Technique::kDecay, 1000, 4};  // tick period 250
constexpr bool expired_at(Cycle touch, Cycle now) {
  LineDecayState s;
  s.last_touch = touch;
  s.armed = true;
  return kD.expired(s, now);
}
}  // namespace
static_assert(kD.tick_period() == 250);
// Touch at 0: deadline 1000, already a tick multiple.
static_assert(kD.first_expiry_tick(0) == 1000);
static_assert(expired_at(0, kD.first_expiry_tick(0)));
static_assert(!expired_at(0, kD.first_expiry_tick(0) - kD.tick_period()));
// Touch at 1: deadline 1001 rounds up to tick 1250.
static_assert(kD.first_expiry_tick(1) == 1250);
static_assert(expired_at(1, kD.first_expiry_tick(1)));
static_assert(!expired_at(1, kD.first_expiry_tick(1) - kD.tick_period()));
// Touch exactly on a tick: deadline lands on a tick again.
static_assert(kD.first_expiry_tick(250) == 1250);

}  // namespace
}  // namespace cdsim::decay
