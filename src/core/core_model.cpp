#include "cdsim/core/core_model.hpp"

#include <bit>

#include "cdsim/common/assert.hpp"

namespace cdsim::core {
namespace {

constexpr const char* stall_name(CoreModel::StallReason r) noexcept {
  switch (r) {
    case CoreModel::StallReason::kDep: return "stall.dep";
    case CoreModel::StallReason::kLoadQueue: return "stall.loadq";
    case CoreModel::StallReason::kRob: return "stall.rob";
    case CoreModel::StallReason::kPort: return "stall.mshr";
    case CoreModel::StallReason::kStore: return "stall.store";
    case CoreModel::StallReason::kCount: break;
  }
  return "stall";
}

}  // namespace

CoreModel::CoreModel(EventQueue& eq, const CoreConfig& cfg, CoreId id,
                     workload::WorkloadStream& stream, LoadStorePort& port,
                     std::uint64_t instr_budget)
    : eq_(eq),
      cfg_(cfg),
      id_(id),
      stream_(stream),
      port_(port),
      budget_(instr_budget) {
  CDSIM_ASSERT(cfg_.issue_width >= 1);
  CDSIM_ASSERT(cfg_.max_outstanding_loads >= 1);
  CDSIM_ASSERT(instr_budget >= 1);
  pow2_width_ = std::has_single_bit(cfg_.issue_width);
  gap_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg_.issue_width));
  port_.set_resources_freed([this] { wake(); });
}

void CoreModel::start(std::function<void()> on_finished) {
  on_finished_ = std::move(on_finished);
  advance();
}

double CoreModel::ipc(Cycle now) const {
  const Cycle end = done_ ? finish_ : now;
  return safe_div(static_cast<double>(committed_),
                  static_cast<double>(end == 0 ? 1 : end));
}

void CoreModel::advance() {
  if (done_) return;
  if (committed_ >= budget_) {
    // Budget committed; drain outstanding loads before declaring finish so
    // the last misses' latencies are fully accounted.
    if (outstanding_count_ == 0) finish();
    return;
  }
  CDSIM_ASSERT(!have_op_);
  op_ = stream_.next(eq_.now());
  have_op_ = true;

  // The gap's non-memory instructions retire at issue_width per cycle;
  // carry fractional cycles so pacing is exact in the long run. For
  // power-of-two widths the carry lives in integer 1/width units (exactly
  // the value the double path would hold — /2^k is exact in binary FP).
  committed_ += op_.gap;
  Cycle delay;
  if (pow2_width_) {
    gap_rem_ += op_.gap;
    delay = gap_rem_ >> gap_shift_;
    gap_rem_ &= (std::uint64_t{1} << gap_shift_) - 1;
  } else {
    gap_carry_ +=
        static_cast<double>(op_.gap) / static_cast<double>(cfg_.issue_width);
    delay = static_cast<Cycle>(gap_carry_);
    gap_carry_ -= static_cast<double>(delay);
  }

  // Zero-delay ops issue in the same cycle; calling directly (with a depth
  // guard) avoids an event per operation on the hot path.
  if (delay == 0 && chain_depth_ < 64) {
    ++chain_depth_;
    try_issue();
    --chain_depth_;
    return;
  }
  eq_.schedule_in(delay, [this] { try_issue(); });
}

bool CoreModel::rob_blocked() const {
  if (outstanding_.empty()) return false;
  // Oldest incomplete load bounds the window (completed fronts were
  // retired in try_issue before this check).
  const OutstandingLoad& oldest = outstanding_.front();
  return committed_ > oldest.instr_no &&
         committed_ - oldest.instr_no > cfg_.rob_window;
}

void CoreModel::try_issue() {
  if (done_) return;
  CDSIM_ASSERT(have_op_);

  // Retire completed loads in program order (ROB head drains).
  while (!outstanding_.empty() && outstanding_.front().completed) {
    outstanding_.pop_front();
  }

  const bool is_load = op_.type != AccessType::kStore;
  const std::uint8_t chain = op_.chain % workload::kMaxChains;
  if (is_load) {
    if (op_.dependent && chain_outstanding_[chain]) {
      park(StallReason::kDep);  // woken by that chain's load completion
      return;
    }
    if (outstanding_count_ >= cfg_.max_outstanding_loads) {
      park(StallReason::kLoadQueue);  // woken by any load completion
      return;
    }
    if (rob_blocked()) {
      park(StallReason::kRob);
      return;
    }
    outstanding_.push_back(
        OutstandingLoad{committed_, eq_.now(), /*completed=*/false});
    OutstandingLoad* slot = &outstanding_.back();
    const std::uint64_t seq = next_load_seq_++;
    const core::LoadOutcome out =
        port_.try_load(op_.addr, [this, slot, seq, chain](Cycle t) {
          slot->completed = true;
          --outstanding_count_;
          load_lat_.add(t >= slot->issued_at ? t - slot->issued_at : 0);
          if (seq == chain_last_seq_[chain]) chain_outstanding_[chain] = false;
          if (done_) return;
          if (committed_ >= budget_ && !have_op_ && outstanding_count_ == 0) {
            finish();
            return;
          }
          wake();
        });
    if (!out.accepted) {
      outstanding_.pop_back();
      park(StallReason::kPort);  // woken by the resources-freed callback
      return;
    }
    loads_.inc();
    if (out.completed) {
      // Synchronous hit: a few cycles of latency, fully hidden by the
      // out-of-order window. No outstanding tracking needed.
      outstanding_.pop_back();
      load_lat_.add(out.latency);
    } else {
      ++outstanding_count_;
      chain_last_seq_[chain] = seq;
      chain_outstanding_[chain] = true;
    }
  } else {
    if (!port_.try_store(op_.addr)) {
      park(StallReason::kStore);  // woken when the write buffer drains
      return;
    }
    stores_.inc();
  }

  ++committed_;
  have_op_ = false;
  advance();
}

void CoreModel::park(StallReason r) {
  if (parked_) return;
  parked_ = true;
  park_reason_ = r;
  parked_since_ = eq_.now();
}

void CoreModel::wake() {
  if (done_) return;
  if (parked_) {
    parked_ = false;
    const Cycle stalled = eq_.now() - parked_since_;
    stall_cycles_.inc(stalled);
    stall_by_[static_cast<std::size_t>(park_reason_)].inc(stalled);
    if (trace_ != nullptr && stalled > 0) {
      trace_->span(trace_track_, stall_name(park_reason_), parked_since_,
                   eq_.now());
    }
    try_issue();
  }
}

void CoreModel::finish() {
  CDSIM_ASSERT(!done_);
  done_ = true;
  finish_ = eq_.now();
  if (parked_) {
    parked_ = false;
    stall_cycles_.inc(eq_.now() - parked_since_);
    if (trace_ != nullptr && eq_.now() > parked_since_) {
      trace_->span(trace_track_, stall_name(park_reason_), parked_since_,
                   eq_.now());
    }
  }
  if (trace_ != nullptr) trace_->instant(trace_track_, "finish", eq_.now());
  if (on_finished_) on_finished_();
}

}  // namespace cdsim::core
