// cache_stats.hpp is header-only; this translation unit exists to give the
// cdsim_cache library an object file and to force the headers through the
// compiler under the project's warning set.
#include "cdsim/cache/cache_stats.hpp"
#include "cdsim/cache/geometry.hpp"
#include "cdsim/cache/mshr.hpp"
#include "cdsim/cache/tag_array.hpp"
#include "cdsim/cache/write_buffer.hpp"

namespace cdsim::cache {
// Explicit instantiation of the tag array for the payload-free case keeps
// template bloat out of downstream objects that only need a plain cache.
template class TagArray<std::uint8_t>;
}  // namespace cdsim::cache
