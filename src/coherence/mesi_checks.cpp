// Compile-time validation of the MESI + turn-off FSM.
//
// These static_asserts pin the protocol edges of paper Figure 2 so an
// accidental edit to the transition functions fails the build, not a run.

#include "cdsim/coherence/mesi.hpp"
#include "cdsim/coherence/turnoff_legality.hpp"

namespace cdsim::coherence {
namespace {

using enum MesiState;

// --- Snoop-side edges (Fig. 2 solid edges) -------------------------------
static_assert(apply_snoop(kModified, BusTxKind::kBusRd).next == kShared);
static_assert(apply_snoop(kModified, BusTxKind::kBusRd).supply_data);
static_assert(apply_snoop(kModified, BusTxKind::kBusRd).memory_update);
static_assert(apply_snoop(kExclusive, BusTxKind::kBusRd).next == kShared);
static_assert(!apply_snoop(kExclusive, BusTxKind::kBusRd).supply_data);
static_assert(apply_snoop(kShared, BusTxKind::kBusRd).next == kShared);
static_assert(apply_snoop(kInvalid, BusTxKind::kBusRd).next == kInvalid);

static_assert(apply_snoop(kModified, BusTxKind::kBusRdX).next == kInvalid);
static_assert(apply_snoop(kModified, BusTxKind::kBusRdX).supply_data);
static_assert(apply_snoop(kModified, BusTxKind::kBusRdX).invalidated);
static_assert(apply_snoop(kExclusive, BusTxKind::kBusRdX).next == kInvalid);
static_assert(apply_snoop(kShared, BusTxKind::kBusUpgr).next == kInvalid);
static_assert(apply_snoop(kShared, BusTxKind::kBusUpgr).invalidated);

// --- Transient states respond correctly ----------------------------------
static_assert(apply_snoop(kTransientDirty, BusTxKind::kBusRd).supply_data);
static_assert(apply_snoop(kTransientDirty, BusTxKind::kBusRd).cancel_turnoff_wb);
static_assert(apply_snoop(kTransientDirty, BusTxKind::kBusRd).next == kInvalid);
static_assert(apply_snoop(kTransientClean, BusTxKind::kBusRdX).next == kInvalid);
static_assert(apply_snoop(kTransientClean, BusTxKind::kBusRd).next ==
              kTransientClean);

// --- Turn-off edges (Fig. 2 dashed edges) --------------------------------
static_assert(classify_turnoff(kModified) == TurnOffClass::kDirtyTurnOff);
static_assert(classify_turnoff(kExclusive) == TurnOffClass::kCleanTurnOff);
static_assert(classify_turnoff(kShared) == TurnOffClass::kCleanTurnOff);
static_assert(classify_turnoff(kInvalid) == TurnOffClass::kIgnore);
static_assert(classify_turnoff(kTransientClean) == TurnOffClass::kIgnore);
static_assert(classify_turnoff(kTransientDirty) == TurnOffClass::kIgnore);
static_assert(turnoff_transient(kModified) == kTransientDirty);
static_assert(turnoff_transient(kShared) == kTransientClean);
static_assert(turnoff_transient(kExclusive) == kTransientClean);

// --- Fill states ----------------------------------------------------------
static_assert(fill_state(/*was_write=*/true, /*shared=*/false) == kModified);
static_assert(fill_state(true, true) == kModified);
static_assert(fill_state(false, false) == kExclusive);
static_assert(fill_state(false, true) == kShared);

// --- Table I, multiprocessor column ---------------------------------------
constexpr auto mp = HierarchyKind::kMultiprocessorWritethroughL1;
static_assert(table1_verdict(mp, /*dirty=*/false, /*pending=*/false).allowed);
static_assert(!table1_verdict(mp, false, /*pending=*/true).allowed);
static_assert(table1_verdict(mp, /*dirty=*/true, false).requires_upper_inval);
static_assert(table1_verdict(mp, true, false).requires_writeback);

}  // namespace
}  // namespace cdsim::coherence
