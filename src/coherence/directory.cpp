#include "cdsim/coherence/directory.hpp"

#include <sstream>

namespace cdsim::coherence {

std::string to_string(const DirectoryEntry& e) {
  std::ostringstream os;
  os << "{sharers=0x" << std::hex << e.sharers << std::dec << ", owner=";
  if (e.owner == kNoCore) {
    os << "-";
  } else {
    os << e.owner;
  }
  os << "}";
  return os.str();
}

}  // namespace cdsim::coherence
