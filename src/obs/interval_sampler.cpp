#include "cdsim/obs/interval_sampler.hpp"

#include <bit>
#include <cinttypes>

#include "cdsim/common/assert.hpp"

namespace cdsim::obs {

IntervalSampler::IntervalSampler(Cycle period) : period_(period) {
  CDSIM_ASSERT_MSG(period >= 1, "sampler period must be >= 1 cycle");
}

IntervalSampler::~IntervalSampler() { finish(); }

bool IntervalSampler::open_csv(const std::string& path, std::string* err) {
  if (out_ != nullptr) {
    if (err != nullptr) *err = "sampler CSV already open";
    return false;
  }
  out_ = std::fopen(path.c_str(), "wb");
  if (out_ == nullptr) {
    if (err != nullptr) *err = "cannot open series file: " + path;
    return false;
  }
  if (std::fputs(
          "window_start,window_end,instructions,l2_accesses,l2_misses,"
          "ipc,l2_miss_rate,l2_powered_frac,dram_row_hit_rate,"
          "fabric_occupancy,avg_l2_temp_k,max_l2_temp_k\n",
          out_) < 0) {
    write_error_ = true;
  }
  return true;
}

void IntervalSampler::push(const SampleRow& row) {
  ++rows_;
  fold(row.window_start);
  fold(row.window_end);
  fold(row.instructions);
  fold(row.l2_accesses);
  fold(row.l2_misses);
  fold(std::bit_cast<std::uint64_t>(row.ipc));
  fold(std::bit_cast<std::uint64_t>(row.l2_miss_rate));
  fold(std::bit_cast<std::uint64_t>(row.l2_powered_frac));
  fold(std::bit_cast<std::uint64_t>(row.dram_row_hit_rate));
  fold(std::bit_cast<std::uint64_t>(row.fabric_occupancy));
  fold(std::bit_cast<std::uint64_t>(row.avg_l2_temp_kelvin));
  fold(std::bit_cast<std::uint64_t>(row.max_l2_temp_kelvin));
  if (out_ == nullptr) return;
  // CSV text is the human-facing view; %.9g round-trips enough digits for
  // plotting while the checksum above carries the exact bits.
  if (std::fprintf(out_,
                   "%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                   ",%.9g,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g\n",
                   row.window_start, row.window_end, row.instructions,
                   row.l2_accesses, row.l2_misses, row.ipc, row.l2_miss_rate,
                   row.l2_powered_frac, row.dram_row_hit_rate,
                   row.fabric_occupancy, row.avg_l2_temp_kelvin,
                   row.max_l2_temp_kelvin) < 0) {
    write_error_ = true;
  }
}

bool IntervalSampler::finish() {
  if (out_ == nullptr) return !write_error_;
  if (std::fclose(out_) != 0) write_error_ = true;
  out_ = nullptr;
  return !write_error_;
}

void IntervalSampler::fold(std::uint64_t bits) noexcept {
  // FNV-1a64 one byte at a time, little-endian field order: fully
  // specified, so the pinned golden checksum is platform-independent.
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (bits >> (8 * i)) & 0xffU;
    hash_ *= 0x100000001b3ULL;
  }
}

}  // namespace cdsim::obs
