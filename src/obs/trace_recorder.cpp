#include "cdsim/obs/trace_recorder.hpp"

#include <cinttypes>
#include <cstring>

namespace cdsim::obs {
namespace {

// Flush threshold for the streaming buffer. Events append to buf_ and hit
// the file in ~64 KiB chunks, matching the .cdt v2 writer's O(chunk)
// memory discipline.
constexpr std::size_t kFlushBytes = 64 * 1024;

// Track names come from the wiring code (no user input), but escape the
// JSON-significant bytes anyway so a surprising name can never corrupt
// the stream.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceRecorder::~TraceRecorder() { close(); }

bool TraceRecorder::open(const std::string& path, std::string* err) {
  if (out_ != nullptr) {
    if (err != nullptr) *err = "trace recorder already open";
    return false;
  }
  out_ = std::fopen(path.c_str(), "wb");
  if (out_ == nullptr) {
    if (err != nullptr) *err = "cannot open trace file: " + path;
    return false;
  }
  buf_.reserve(kFlushBytes + 512);
  buf_ += "{\"traceEvents\":[";
  return true;
}

TrackId TraceRecorder::track(const std::string& name) {
  const TrackId id = next_track_++;
  if (out_ == nullptr) return id;
  begin_event();
  char head[96];
  const int n = std::snprintf(
      head, sizeof head,
      "{\"ph\":\"M\",\"pid\":1,\"tid\":%" PRIu32
      ",\"name\":\"thread_name\",\"args\":{\"name\":\"",
      id);
  emit(head, static_cast<std::size_t>(n));
  emit_str(json_escape(name));
  emit("\"}}", 3);
  return id;
}

void TraceRecorder::instant(TrackId t, const char* name, Cycle at) {
  if (out_ == nullptr) return;
  begin_event();
  char ev[160];
  const int n = std::snprintf(
      ev, sizeof ev,
      "{\"ph\":\"i\",\"pid\":1,\"tid\":%" PRIu32 ",\"ts\":%" PRIu64
      ",\"s\":\"t\",\"name\":\"%s\"}",
      t, at, name);
  emit(ev, static_cast<std::size_t>(n));
}

void TraceRecorder::instant(TrackId t, const char* name, Cycle at,
                            const char* key, std::uint64_t value) {
  if (out_ == nullptr) return;
  begin_event();
  char ev[224];
  const int n = std::snprintf(
      ev, sizeof ev,
      "{\"ph\":\"i\",\"pid\":1,\"tid\":%" PRIu32 ",\"ts\":%" PRIu64
      ",\"s\":\"t\",\"name\":\"%s\",\"args\":{\"%s\":%" PRIu64 "}}",
      t, at, name, key, value);
  emit(ev, static_cast<std::size_t>(n));
}

void TraceRecorder::span(TrackId t, const char* name, Cycle begin,
                         Cycle end) {
  if (out_ == nullptr) return;
  begin_event();
  char ev[192];
  const Cycle dur = end >= begin ? end - begin : 0;
  const int n = std::snprintf(
      ev, sizeof ev,
      "{\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu32 ",\"ts\":%" PRIu64
      ",\"dur\":%" PRIu64 ",\"name\":\"%s\"}",
      t, begin, dur, name);
  emit(ev, static_cast<std::size_t>(n));
}

void TraceRecorder::span(TrackId t, const char* name, Cycle begin, Cycle end,
                         const char* key, std::uint64_t value) {
  if (out_ == nullptr) return;
  begin_event();
  char ev[256];
  const Cycle dur = end >= begin ? end - begin : 0;
  const int n = std::snprintf(
      ev, sizeof ev,
      "{\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu32 ",\"ts\":%" PRIu64
      ",\"dur\":%" PRIu64 ",\"name\":\"%s\",\"args\":{\"%s\":%" PRIu64 "}}",
      t, begin, dur, name, key, value);
  emit(ev, static_cast<std::size_t>(n));
}

bool TraceRecorder::close() {
  if (out_ == nullptr) return !write_error_;
  buf_ += "]}\n";
  flush_buffer();
  if (std::fclose(out_) != 0) write_error_ = true;
  out_ = nullptr;
  return !write_error_;
}

void TraceRecorder::emit(const char* data, std::size_t len) {
  buf_.append(data, len);
  if (buf_.size() >= kFlushBytes) flush_buffer();
}

void TraceRecorder::begin_event() {
  if (any_event_) buf_ += ',';
  any_event_ = true;
  ++events_;
}

void TraceRecorder::flush_buffer() {
  if (!buf_.empty() && out_ != nullptr) {
    if (std::fwrite(buf_.data(), 1, buf_.size(), out_) != buf_.size()) {
      write_error_ = true;
    }
  }
  buf_.clear();
}

}  // namespace cdsim::obs
